package economy

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/pricing"
	"repro/internal/structure"
	"repro/internal/workload"
)

// Regression tests for the accounting violations found while building the
// adversarial economy fuzzer (PR 10). Each test pins one law an adversary
// could previously break:
//
//   - TestLedgerCapAdmitsNewEntries: a full regret ledger evicted every
//     newcomer at touched=0 (inverted LRU), freezing the map at its first
//     cap entries forever.
//   - TestLedgerCapEvictionAccountsRegret: cap evictions silently
//     discarded accrued regret, so cold-cycling one-off structure IDs
//     through the map erased a victim structure's Eq. 3 progress.
//   - TestDistributeRegretConservation: round-half-away division minted
//     regret when a plan's regret split across its missing structures
//     (1µ$ over two structures landed 2µ$).
//   - TestSelfishRecoverySplitExact: owner reimbursements must sum to
//     exactly the amortized + maintenance components the user was
//     charged, per query and in the journal totals.
//   - TestInvestBackoffSurvivesRestore: a restart must not reset the
//     investment backoff a failed build raised.

// testEconomy builds the standard adversarial test rig: TPCH catalog,
// paper templates, conservative economy under the given provider.
func testEconomy(t *testing.T, provider Provider, mutate func(*Config)) (*Economy, *optimizer.Optimizer, *cache.Cache, []*workload.Template) {
	t.Helper()
	cat := catalog.TPCH(20)
	model, err := cost.NewModel(cat, pricing.EC22008(), cost.DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	ca := cache.New(0)
	opt, err := optimizer.New(optimizer.Config{Model: model, AmortN: 5000, AllowIndexes: true, AllowNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model:                 model,
		Cache:                 ca,
		Optimizer:             opt,
		Criterion:             SelectCheapest,
		Provider:              provider,
		RegretFraction:        0.0002,
		AmortN:                5000,
		InitialCredit:         money.FromDollars(25),
		Conservative:          true,
		UserAcceptsOverBudget: true,
		MaintFailureFactor:    1.0,
		FailureFloor:          money.FromDollars(0.0001),
		NeverUsedFloor:        money.FromDollars(0.5),
		InvestBackoff:         2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	econ, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tpls := workload.PaperTemplates()
	for _, tpl := range tpls {
		if err := tpl.Validate(cat); err != nil {
			t.Fatal(err)
		}
	}
	return econ, opt, ca, tpls
}

// TestLedgerCapAdmitsNewEntries pins the inverted-LRU insertion bug: a
// ledger at its cap must admit a new structure's regret (evicting the
// least-regret existing entry), not evict the entry it just inserted.
func TestLedgerCapAdmitsNewEntries(t *testing.T) {
	l := newLedger("t", 0, 4)
	for i := 0; i < 4; i++ {
		l.add(structure.ID(fmt.Sprintf("s%d", i)), money.Amount(100*(i+1)))
	}
	l.add("fresh", money.Amount(1000))
	if _, ok := l.entries["fresh"]; !ok {
		t.Fatal("full ledger evicted the entry it just inserted (inverted LRU): new structures can never accrue regret")
	}
	if _, ok := l.entries["s0"]; ok {
		t.Error("eviction spared the least-regret entry s0")
	}
	if l.regretDropped != money.Amount(100) {
		t.Errorf("dropped regret accounted %v, want 100µ$ (entry s0)", l.regretDropped)
	}
	if got, want := l.liveRegret().Add(l.regretDropped), l.regretAccrued; got != want {
		t.Errorf("regret conservation: live+dropped %v != accrued %v", got, want)
	}
}

// TestLedgerCapEvictionAccountsRegret pins the cold-cycle attack from the
// adversary suite: spraying one-off structure IDs through a capped ledger
// must neither evict a victim structure's accumulating regret (the spray's
// own near-zero entries are the eviction victims) nor silently lose any
// regret from the books.
func TestLedgerCapEvictionAccountsRegret(t *testing.T) {
	const capN = 8
	l := newLedger("t", 0, capN)
	victim := structure.ID("victim")
	var victimRegret money.Amount
	for round := 0; round < 500; round++ {
		l.add(victim, money.Amount(50))
		victimRegret = victimRegret.Add(money.Amount(50))
		// The cold-cycle: cap fresh never-repeated IDs per round, each
		// with a token share — under LRU eviction these would rotate the
		// victim out every round.
		for j := 0; j < capN; j++ {
			l.add(structure.ID(fmt.Sprintf("oneoff-%d-%d", round, j)), money.Amount(1))
		}
	}
	e, ok := l.entries[victim]
	if !ok {
		t.Fatal("cold-cycling one-off IDs evicted the victim structure's regret entry")
	}
	if e.regret != victimRegret {
		t.Errorf("victim regret %v, want %v accrued across the attack", e.regret, victimRegret)
	}
	if len(l.entries) > capN {
		t.Errorf("%d live entries exceed cap %d", len(l.entries), capN)
	}
	if !l.regretDropped.IsPositive() {
		t.Error("cap evictions accounted no dropped regret")
	}
	if got, want := l.liveRegret().Add(l.regretDropped), l.regretAccrued; got != want {
		t.Errorf("regret conservation: live+dropped %v != accrued %v — eviction lost regret silently", got, want)
	}
}

// TestDistributeRegretConservation pins the minted-regret bug: splitting a
// plan's regret across its missing structures must land exactly the
// computed regret, never more (round-half-away division landed 2µ$ for a
// 1µ$ regret over two missing structures, doubling what micro-queries
// feed the Eq. 3 trigger).
func TestDistributeRegretConservation(t *testing.T) {
	econ, opt, ca, tpls := testEconomy(t, ProviderAltruistic, nil)

	// Enumerate a real plan set and pick a possible plan with at least
	// two missing structures.
	q := &workload.Query{
		ID:          1,
		Template:    tpls[0],
		Selectivity: tpls[0].SelMin,
		Arrival:     time.Second,
		Budget:      budget.NewStep(money.FromDollars(1), time.Hour),
	}
	ca.Advance(q.Arrival)
	plans, err := opt.Enumerate(q, ca)
	if err != nil {
		t.Fatal(err)
	}
	var target *plan.Plan
	for _, p := range plans {
		if len(p.Missing) >= 2 {
			target = p
			break
		}
	}
	if target == nil {
		t.Fatal("no possible plan with >= 2 missing structures in the enumeration")
	}

	led := econ.ledgerFor("mallory")
	acct := econ.account(led)
	for _, r := range []money.Amount{1, 3, 5, 7, money.Amount(len(target.Missing) - 1)} {
		before := acct.liveRegret()
		landed := econ.distribute(target, r, led, acct)
		if landed > r {
			t.Fatalf("distribute landed %v of computed regret %v — regret was minted", landed, r)
		}
		if landed != r {
			// All kinds are allowed in this config, so the split must be
			// exact, not just bounded.
			t.Fatalf("distribute landed %v of computed regret %v — regret was lost", landed, r)
		}
		if got := acct.liveRegret().Sub(before); got != landed {
			t.Fatalf("ledger gained %v, distribute reported %v", got, landed)
		}
	}
}

// TestSelfishRecoverySplitExact pins the satellite-2 audit: under the
// selfish provider with skewed ownership, the amortization + maintenance
// recovery flowing back to owners must sum per query to exactly the
// AmortPrice + MaintPrice the chosen plan charged the user (whenever no
// failure sweep intersected the plan), every reimbursement must go to the
// structure's recorded owner, and the journal-style event totals must
// reconcile exactly with the ledger sums.
func TestSelfishRecoverySplitExact(t *testing.T) {
	econ, opt, ca, tpls := testEconomy(t, ProviderSelfish, nil)

	var perQuery []obs.Event
	var totalRecovered, totalInvested money.Amount
	econ.SetEvents(func(ev obs.Event) {
		perQuery = append(perQuery, ev)
		switch ev.Type {
		case obs.EventRecover:
			totalRecovered = totalRecovered.Add(ev.Amount)
		case obs.EventInvest:
			totalInvested = totalInvested.Add(ev.Amount)
		}
	})

	// Skewed tenants: alice dominates, so she finances most structures
	// and the others' queries reimburse her.
	tenants := []string{"alice", "alice", "alice", "bob", "carol", ""}
	rng := rand.New(rand.NewSource(99))
	exactQueries := 0
	for i := 0; i < 4000; i++ {
		tpl := tpls[rng.Intn(len(tpls))]
		q := &workload.Query{
			ID:          int64(i + 1),
			Tenant:      tenants[rng.Intn(len(tenants))],
			Template:    tpl,
			Selectivity: tpl.SelMin + rng.Float64()*(tpl.SelMax-tpl.SelMin),
			Arrival:     ca.Clock() + time.Duration(1+rng.Intn(9_000))*time.Millisecond,
			Budget: budget.NewStep(
				money.FromDollars(rng.Float64()*0.02),
				time.Duration(1+rng.Intn(60))*time.Second),
		}
		ca.Advance(q.Arrival)
		ca.CompleteDue()
		plans, err := opt.Enumerate(q, ca)
		if err != nil {
			t.Fatal(err)
		}
		perQuery = perQuery[:0]
		d, err := econ.HandleQuery(q, plans)
		if err != nil {
			t.Fatal(err)
		}
		var recovered money.Amount
		for _, ev := range perQuery {
			if ev.Type != obs.EventRecover {
				continue
			}
			recovered = recovered.Add(ev.Amount)
			if owner := econ.Market().Owner(structure.ID(ev.Structure)); ev.Tenant != owner {
				t.Fatalf("query %d: recovery for %s credited %q, structure owner is %q",
					q.ID, ev.Structure, ev.Tenant, owner)
			}
		}
		if d.Chosen != nil && len(d.Failures) == 0 {
			want := d.Chosen.AmortPrice.Add(d.Chosen.MaintPrice)
			if recovered != want {
				t.Fatalf("query %d: owners reimbursed %v, user was charged %v amort+maint — %v lost or minted",
					q.ID, recovered, want, want.Sub(recovered))
			}
			if want != 0 {
				exactQueries++
			}
		}
	}
	if exactQueries == 0 {
		t.Fatal("no query exercised a non-zero recovery split")
	}

	// Journal totals must reconcile exactly with the ledger sums.
	var sumRecovered, sumInvested money.Amount
	ownersSeen := map[string]bool{}
	for _, ts := range econ.TenantStats() {
		sumRecovered = sumRecovered.Add(ts.Recovered)
		sumInvested = sumInvested.Add(ts.Invested)
		if ts.Recovered.IsPositive() {
			ownersSeen[ts.Tenant] = true
		}
	}
	if sumRecovered != totalRecovered {
		t.Errorf("ledgers recovered %v, journal events say %v", sumRecovered, totalRecovered)
	}
	if sumInvested != totalInvested {
		t.Errorf("ledgers invested %v, journal events say %v", sumInvested, totalInvested)
	}
	if len(ownersSeen) < 2 {
		t.Errorf("recovery reached %d owners, want skewed multi-owner coverage", len(ownersSeen))
	}
	if err := econ.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestInvestBackoffSurvivesRestore pins the satellite-3 audit: snapshot /
// restore must preserve the failure history that raises the Eq. 3 bar, so
// a restart cannot let a regret-inflater immediately re-trigger a build
// the backoff had damped.
func TestInvestBackoffSurvivesRestore(t *testing.T) {
	for _, provider := range []Provider{ProviderAltruistic, ProviderSelfish} {
		t.Run(provider.String(), func(t *testing.T) {
			// A rent-hostile regime: long gaps rot structures, so builds
			// fail and the backoff history grows.
			econ, opt, ca, tpls := testEconomy(t, provider, func(cfg *Config) {
				cfg.RegretFraction = 0.0001
				cfg.NeverUsedFloor = money.FromDollars(0.05)
				cfg.MaintFailureFactor = 0.2
			})
			rng := rand.New(rand.NewSource(7))
			run := func(e *Economy, c *cache.Cache, i int) {
				tpl := tpls[i%len(tpls)]
				q := &workload.Query{
					ID:          int64(i + 1),
					Tenant:      "mallory",
					Template:    tpl,
					Selectivity: tpl.SelMin + rng.Float64()*(tpl.SelMax-tpl.SelMin),
					Arrival:     c.Clock() + time.Duration(20+rng.Intn(40))*time.Second,
					Budget:      budget.NewStep(money.FromDollars(0.05), time.Hour),
				}
				c.Advance(q.Arrival)
				c.CompleteDue()
				plans, err := opt.Enumerate(q, c)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := e.HandleQuery(q, plans); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			for ; econ.market.failureCount == 0 && i < 5000; i++ {
				run(econ, ca, i)
			}
			if econ.market.failureCount == 0 {
				t.Fatal("stream produced no structure failures; backoff never exercised")
			}
			if len(econ.market.failCount) == 0 {
				t.Fatal("failures recorded no failCount backoff history")
			}

			st := econ.Snapshot()
			cfg := econ.cfg
			restored, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(st); err != nil {
				t.Fatal(err)
			}
			if len(restored.market.failCount) != len(econ.market.failCount) {
				t.Fatalf("restore kept %d failCount entries, want %d",
					len(restored.market.failCount), len(econ.market.failCount))
			}
			threshold := money.FromDollars(0.001)
			for id, n := range econ.market.failCount {
				if got := restored.market.failCount[id]; got != n {
					t.Errorf("failCount[%s] restored as %d, want %d", id, got, n)
				}
				before := econ.market.investmentBar(threshold, id)
				after := restored.market.investmentBar(threshold, id)
				if before != after {
					t.Errorf("investment bar for %s changed across restore: %v -> %v", id, before, after)
				}
				if n > 0 && after <= threshold {
					t.Errorf("restored bar for %s (%v) not raised above base threshold %v despite %d failures",
						id, after, threshold, n)
				}
			}
			// RegretDropped must survive too: it is part of the regret
			// conservation audit.
			for _, ts := range restored.TenantStats() {
				if err := restored.CheckInvariants(); err != nil {
					t.Fatalf("restored economy fails invariants (tenant %s): %v", ts.Tenant, err)
				}
			}
		})
	}
}
