package economy

import (
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/obs"
	"repro/internal/structure"
)

// Market is the shared structure pool: the one cache all tenants answer
// from, plus the mechanics every account uses against it — residency,
// build pricing and construction, maintenance-failure eviction, the
// investment backoff history, and the physical-usage accumulator the
// simulator prices builds with. The Market holds no money of its own;
// Ledgers pay into it and are recorded as the owners of what they
// financed, so amortization and maintenance recovery can flow back to
// whoever built each resident.
type Market struct {
	cfg Config

	// owner records which tenant financed each structure's build ("" for
	// the altruistic pool). Cleared on eviction: a rebuild may be financed
	// by someone else.
	owner map[structure.ID]string

	// failCount records how many times a structure has failed, for
	// investment backoff. Survives eviction by design.
	failCount map[structure.ID]int

	// resolved caches ID → Structure reconstructions. Structures are
	// immutable descriptors and the ID space is catalog-bounded, so the
	// cache never invalidates; without it a ledger entry that sits above
	// the investment bar but cannot build (conservative provider, low
	// credit) re-parses its ID on every query.
	resolved map[structure.ID]*structure.Structure

	// buildUsage accumulates the physical resource usage of investments
	// since the last drain.
	buildUsage cost.Usage

	failureCount int64

	// events mirrors Economy.events (installed via Economy.SetEvents) for
	// the invest and evict events the market itself originates.
	events func(obs.Event)
}

// emit reports one event if a sink is installed, stamping the economy
// clock.
func (m *Market) emit(ev obs.Event) {
	if m.events == nil {
		return
	}
	ev.ClockSec = m.cfg.Cache.Clock().Seconds()
	m.events(ev)
}

// newMarket wires the shared pool.
func newMarket(cfg Config) *Market {
	return &Market{
		cfg:       cfg,
		owner:     make(map[structure.ID]string),
		failCount: make(map[structure.ID]int),
	}
}

// Cache exposes the shared residency state.
func (m *Market) Cache() *cache.Cache { return m.cfg.Cache }

// Owner returns the tenant that financed a resident structure ("" for
// the communal pool or unknown structures).
func (m *Market) Owner(id structure.ID) string { return m.owner[id] }

// drainBuildUsage returns the physical usage of all investments since the
// previous drain and resets the accumulator.
func (m *Market) drainBuildUsage() cost.Usage {
	u := m.buildUsage
	m.buildUsage = cost.Usage{}
	return u
}

// investmentBar raises the Eq. 3 threshold exponentially with the
// structure's failure history, damping build-evict-rebuild cycles.
func (m *Market) investmentBar(threshold money.Amount, id structure.ID) money.Amount {
	bar := threshold
	if m.cfg.InvestBackoff > 1 {
		for i := 0; i < m.failCount[id] && i < 30; i++ {
			bar = bar.MulFloat(m.cfg.InvestBackoff)
		}
	}
	return bar
}

// buildStructure starts construction of st (and, for indexes, of its
// missing columns first, per Eq. 14), charging the payer ledger. It
// reports whether the investment was made; a conservative provider skips
// builds the payer's account cannot cover.
func (m *Market) buildStructure(st *structure.Structure, payer *Ledger) bool {
	ca := m.cfg.Cache
	price, out, err := m.cfg.Optimizer.BuildPrice(st, ca)
	if err != nil {
		return false
	}
	if m.cfg.Conservative && payer.credit < price {
		return false
	}

	now := ca.Clock()
	readyAt := now + out.Time
	if st.Kind == structure.KindIndex {
		// Build missing columns first; the index build waits for them.
		var colsReady = now
		for _, ref := range st.Index.Refs() {
			colID := structure.ColumnID(ref)
			if ca.Has(colID) {
				continue
			}
			if ca.Building(colID) {
				continue
			}
			colSt, err := structure.ColumnStructure(m.cfg.Model.Catalog(), ref)
			if err != nil {
				return false
			}
			colPrice, colOut, err := m.cfg.Optimizer.BuildPrice(colSt, ca)
			if err != nil {
				return false
			}
			if err := ca.StartBuild(colSt, now+colOut.Time, colPrice); err != nil {
				return false
			}
			payer.credit = payer.credit.Sub(colPrice)
			payer.invested = payer.invested.Add(colPrice)
			m.owner[colID] = payer.tenant
			m.buildUsage.Add(colOut.Usage)
			m.emit(obs.Event{
				Type:      obs.EventInvest,
				Tenant:    payer.tenant,
				Structure: string(colID),
				Amount:    colPrice,
				Reason:    "prerequisite column for an index build",
			})
			if now+colOut.Time > colsReady {
				colsReady = now + colOut.Time
			}
		}
		// The composite BuildPrice included the missing columns, but
		// those were just charged individually; re-price the sort-only
		// component by pretending all columns are cached.
		sortOnly, sortOut, err := m.indexSortOnly(st)
		if err != nil {
			return false
		}
		price, out = sortOnly, sortOut
		readyAt = colsReady + out.Time
	}

	if err := ca.StartBuild(st, readyAt, price); err != nil {
		return false
	}
	payer.credit = payer.credit.Sub(price)
	payer.invested = payer.invested.Add(price)
	payer.investCount++
	m.owner[st.ID] = payer.tenant
	m.buildUsage.Add(out.Usage)
	m.emit(obs.Event{
		Type:      obs.EventInvest,
		Tenant:    payer.tenant,
		Structure: string(st.ID),
		Amount:    price,
		Reason:    "accumulated regret crossed the Eq. 3 investment bar",
	})
	return true
}

// indexSortOnly prices just the in-cache sort of an index build.
func (m *Market) indexSortOnly(st *structure.Structure) (money.Amount, cost.Outcome, error) {
	out, err := m.cfg.Model.BuildIndex(st.Index, func(catalog.ColumnRef) bool { return true })
	if err != nil {
		return 0, cost.Outcome{}, err
	}
	return cost.Price(m.cfg.Model.Schedule(), out.Usage), out, nil
}

// resolveStructure reconstructs the Structure behind a ledger ID by asking
// the catalog. Ledger entries always originate from plans, so the ID shape
// is trusted.
func (m *Market) resolveStructure(id structure.ID) (*structure.Structure, error) {
	if st, ok := m.resolved[id]; ok {
		return st, nil
	}
	st, err := ResolveID(m.cfg.Model.Catalog(), id)
	if err != nil {
		return nil, err
	}
	if m.resolved == nil {
		m.resolved = make(map[structure.ID]*structure.Structure)
	}
	m.resolved[id] = st
	return st, nil
}

// maintDueOf returns the maintenance arrears a resident entry has accrued
// at the current cache clock — the same quantity the optimizer priced into
// the plan's MaintPrice.
func (m *Market) maintDueOf(entry *cache.Entry) money.Amount {
	return cache.MaintDue(entry, func(en *cache.Entry) money.Amount {
		return m.cfg.Model.MaintCost(en.S.Kind == structure.KindCPUNode, en.S.Bytes, m.cfg.Cache.Clock()-en.MaintPaidUntil)
	})
}

// sweepFailures evicts structures whose maintenance rent no longer pays
// (footnote 3 "structure failure"). Two rules apply:
//
//   - Never-used structures fail when their accrued arrears exceed
//     MaintFailureFactor × build price: the investment clearly missed.
//   - Used structures fail when their rent *rate* exceeds
//     MaintFailureFactor × their lifetime value rate
//     (EarnedValue / time since build): at long inter-query intervals the
//     rent a structure accrues outweighs the value it produces, and a
//     rational provider evicts to save disk money (§VII-B, the 10 s and
//     60 s regimes). Rates — not single gaps — are compared so a busy
//     structure survives an occasional long idle stretch.
//
// The floors suppress evictions over negligible arrears so structures do
// not flap at short intervals, and give fresh builds time to see their
// first use (partial structure sets are unusable until complete).
func (m *Market) sweepFailures() []structure.ID {
	if m.cfg.MaintFailureFactor <= 0 {
		return nil
	}
	ca := m.cfg.Cache
	type victim struct {
		id     structure.ID
		due    money.Amount
		reason string
	}
	var victims []victim
	ca.ForEach(func(entry *cache.Entry) {
		due := m.maintDueOf(entry)
		reason := ""
		if entry.Uses == 0 {
			if due > m.cfg.NeverUsedFloor &&
				due > entry.BuildPrice.MulFloat(m.cfg.MaintFailureFactor) {
				reason = "never used: arrears exceeded the build price factor"
			}
		} else if due > m.cfg.FailureFloor {
			// Grace window: rates need at least an hour of post-first-
			// use history to mean anything.
			window := ca.Clock() - entry.FirstUsed
			if window >= time.Hour {
				rentPerHour := m.cfg.Model.MaintCost(
					entry.S.Kind == structure.KindCPUNode, entry.S.Bytes, time.Hour).Dollars()
				valuePerHour := entry.EarnedValue.Dollars() / window.Hours()
				if rentPerHour > m.cfg.MaintFailureFactor*valuePerHour {
					reason = "rent rate outweighed lifetime value rate"
				}
			}
		}
		if reason != "" {
			victims = append(victims, victim{id: entry.S.ID, due: due, reason: reason})
		}
	})
	if len(victims) == 0 {
		return nil
	}
	// Eviction decisions are independent per entry, so the victim SET is
	// deterministic even though map order is not; sort for stable output.
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	ids := make([]structure.ID, 0, len(victims))
	for _, v := range victims {
		m.emit(obs.Event{
			Type:      obs.EventEvict,
			Tenant:    m.owner[v.id],
			Structure: string(v.id),
			Amount:    v.due,
			Reason:    v.reason,
		})
		ca.Evict(v.id)
		delete(m.owner, v.id)
		m.failCount[v.id]++
		m.failureCount++
		ids = append(ids, v.id)
	}
	return ids
}
