package economy

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// FuzzEconomyAdversarial is the tenant-ledger property test turned loose:
// the fuzz input is decoded into an interleaved multi-tenant query stream
// with one designated liar ("mallory") who underbids her truthful step
// budget by a fuzzer-chosen fraction. Both providers settle the stream
// while the harness holds every law the economy must keep against a
// hostile tenant:
//
//   - credit conservation: every micro-dollar of account credit is
//     traceable to seeds, margins, recovery and investment;
//   - regret ledgers never go negative, never exceed their cap, and
//     live + dropped regret never exceeds what was accrued;
//   - journal/ledger reconciliation: the event stream's invest and
//     recover totals equal the ledger sums exactly;
//   - underbid dominance: on every decision, mallory's lie is charged no
//     more and yields the provider no more profit than the honest
//     declaration would have on the very same market state (the
//     counterfactual Quote) — "no tenant profits from lying", checked
//     per decision rather than per run so investment-history divergence
//     cannot blur the comparison.
//
// Violations of these laws found while building this fuzzer — the
// inverted-LRU ledger insertion, cap evictions losing regret, and the
// regret minted by round-half-away division in distribute — are pinned
// individually in adversarial_regression_test.go.
func FuzzEconomyAdversarial(f *testing.F) {
	// A round-robin of tenants and templates with rising budgets.
	rr := make([]byte, 0, 256)
	for i := 0; i < 64; i++ {
		rr = append(rr, byte(i), byte(i*3), byte(255-i*4), byte(i*4))
	}
	f.Add(rr)
	// Mallory-heavy: the liar dominates the stream, alternating steep
	// underbids with near-truthful bids on a hot template.
	mh := make([]byte, 0, 256)
	for i := 0; i < 64; i++ {
		mh = append(mh, 4, 2, byte(i*2), 200)
	}
	f.Add(mh)
	// Budget edge cases: zero budgets, max budgets, zero selectivity.
	f.Add(bytes.Repeat([]byte{4, 0, 0, 0}, 32))
	f.Add(bytes.Repeat([]byte{0, 5, 255, 255}, 32))

	// Shared read-only pricing state; everything mutable is rebuilt per
	// iteration.
	cat := catalog.TPCH(20)
	model, err := cost.NewModel(cat, pricing.EC22008(), cost.DefaultTunables())
	if err != nil {
		f.Fatal(err)
	}
	tpls := workload.PaperTemplates()
	for _, tpl := range tpls {
		if err := tpl.Validate(cat); err != nil {
			f.Fatal(err)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		for _, provider := range []Provider{ProviderAltruistic, ProviderSelfish} {
			fuzzAdversarialStream(t, provider, cat, model, tpls, data)
		}
	})
}

// fuzzAdversarialStream decodes data into a query stream and settles it
// against a fresh economy, asserting the adversarial invariants.
func fuzzAdversarialStream(t *testing.T, provider Provider, cat *catalog.Catalog, model *cost.Model, tpls []*workload.Template, data []byte) {
	tenants := []string{"", "alice", "bob", "carol", "mallory"}
	const liar = "mallory"

	ca := cache.New(0)
	opt, err := optimizer.New(optimizer.Config{Model: model, AmortN: 5000, AllowIndexes: true, AllowNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	initial := money.FromDollars(25)
	econ, err := New(Config{
		Model:                 model,
		Cache:                 ca,
		Optimizer:             opt,
		Criterion:             SelectCheapest,
		Provider:              provider,
		RegretFraction:        0.0002,
		AmortN:                5000,
		InitialCredit:         initial,
		Conservative:          true,
		UserAcceptsOverBudget: true,
		MaintFailureFactor:    1.0,
		FailureFloor:          money.FromDollars(0.0001),
		NeverUsedFloor:        money.FromDollars(0.5),
		InvestBackoff:         2,
		LedgerCap:             64, // small cap so fuzzed streams exercise eviction
	})
	if err != nil {
		t.Fatal(err)
	}

	var evInvested, evRecovered money.Amount
	econ.SetEvents(func(ev obs.Event) {
		switch ev.Type {
		case obs.EventInvest:
			evInvested = evInvested.Add(ev.Amount)
		case obs.EventRecover:
			evRecovered = evRecovered.Add(ev.Amount)
		}
	})

	var chargedTotal, execTotal, maintTotal money.Amount
	// Instrumented plan enumeration + settlement costs ~1 ms per query;
	// the cap keeps one fuzz exec well under a second so a 10 s CI run
	// still explores mutations.
	const maxQueries = 128
	n := len(data) / 4
	if n > maxQueries {
		n = maxQueries
	}
	for i := 0; i < n; i++ {
		c := data[4*i : 4*i+4]
		tenant := tenants[int(c[0])%len(tenants)]
		tpl := tpls[int(c[1])%len(tpls)]
		sel := tpl.SelMin + float64(c[2])/255*(tpl.SelMax-tpl.SelMin)
		truthPrice := money.FromDollars(float64(c[3]) / 255 * 0.02)
		tmax := time.Duration(1+int(c[0])%60) * time.Second
		gap := time.Duration(1+int(c[1])%97) * 100 * time.Millisecond

		q := &workload.Query{
			ID:          int64(i + 1),
			Tenant:      tenant,
			Template:    tpl,
			Selectivity: sel,
			Arrival:     ca.Clock() + gap,
		}
		truth := budget.NewStep(truthPrice, tmax)
		if tenant == liar {
			// The lie: a step of the same shape and deadline scaled down
			// to a fuzzer-chosen fraction of the truthful valuation.
			lie := truthPrice.MulFloat(float64(int(c[2])%16) / 16)
			q.Budget = budget.NewStep(lie, tmax)
			q.Truth = truth
		} else {
			q.Budget = truth
		}

		ca.Advance(q.Arrival)
		ca.CompleteDue()
		plans, err := opt.Enumerate(q, ca)
		if err != nil {
			t.Fatal(err)
		}
		var truthQuote QuoteResult
		if q.Truth != nil {
			truthQuote = econ.Quote(plans, q.Truth)
		}
		d, err := econ.HandleQuery(q, plans)
		if err != nil {
			t.Fatal(err)
		}
		if q.Truth != nil {
			if d.Charged > truthQuote.Charged {
				t.Fatalf("%v query %d: underbid charged %v, honest declaration would pay %v",
					provider, q.ID, d.Charged, truthQuote.Charged)
			}
			if d.Profit > truthQuote.Profit {
				t.Fatalf("%v query %d: underbid profit %v beats honest %v — tenant profited from lying",
					provider, q.ID, d.Profit, truthQuote.Profit)
			}
		}
		if d.Chosen != nil {
			chargedTotal = chargedTotal.Add(d.Charged)
			execTotal = execTotal.Add(d.Chosen.ExecPrice)
			maintTotal = maintTotal.Add(d.Chosen.MaintPrice)
		}
		if i%8 == 0 {
			if err := econ.CheckInvariants(); err != nil {
				t.Fatalf("%v after query %d: %v", provider, q.ID, err)
			}
		}
	}
	if err := econ.CheckInvariants(); err != nil {
		t.Fatalf("%v at end of stream: %v", provider, err)
	}

	// Credit conservation and exact journal/ledger reconciliation.
	s := econ.Stats()
	ts := econ.TenantStats()
	var sumProfit, sumCredit, sumInvested, sumRecovered money.Amount
	for _, l := range ts {
		sumProfit = sumProfit.Add(l.Profit)
		sumCredit = sumCredit.Add(l.Credit)
		sumInvested = sumInvested.Add(l.Invested)
		sumRecovered = sumRecovered.Add(l.Recovered)
	}
	switch provider {
	case ProviderAltruistic:
		want := initial.Add(chargedTotal).Sub(execTotal).Sub(s.Invested)
		if got := econ.Credit(); got != want {
			t.Fatalf("altruistic pool credit %v != seed %v + charged %v − exec %v − invested %v",
				got, initial, chargedTotal, execTotal, s.Invested)
		}
	case ProviderSelfish:
		seeds := initial.MulInt(int64(len(ts)))
		want := seeds.Add(sumProfit).Add(sumRecovered).Sub(sumInvested)
		if got := econ.Credit(); got != want {
			t.Fatalf("selfish Σ credit %v != seeds %v + profit %v + recovered %v − invested %v",
				got, seeds, sumProfit, sumRecovered, sumInvested)
		}
		if margin := chargedTotal.Sub(execTotal).Sub(sumProfit).Add(maintTotal); sumRecovered > margin {
			t.Fatalf("selfish recovered %v exceeds collected amort+maint margin %v", sumRecovered, margin)
		}
	}
	if evInvested != s.Invested {
		t.Fatalf("%v journal invest events total %v, ledgers say %v", provider, evInvested, s.Invested)
	}
	if evRecovered != s.Recovered {
		t.Fatalf("%v journal recover events total %v, ledgers say %v", provider, evRecovered, s.Recovered)
	}
}
