package economy

import (
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/pricing"
	"repro/internal/structure"
	"repro/internal/workload"
)

// rig bundles a full economy test fixture.
type rig struct {
	model *cost.Model
	cache *cache.Cache
	opt   *optimizer.Optimizer
	econ  *Economy
}

func newRig(t *testing.T, mut func(*Config)) *rig {
	t.Helper()
	m, err := cost.NewModel(catalog.TPCH(10), pricing.EC22008(), cost.DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	ca := cache.New(0)
	opt, err := optimizer.New(optimizer.Config{Model: m, AmortN: 1000, AllowIndexes: true, AllowNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model:                 m,
		Cache:                 ca,
		Optimizer:             opt,
		Criterion:             SelectCheapest,
		RegretFraction:        0.1,
		AmortN:                1000,
		InitialCredit:         money.FromDollars(100),
		Conservative:          true,
		UserAcceptsOverBudget: true,
		MaintFailureFactor:    1.0,
		FailureFloor:          money.FromDollars(0.001),
	}
	if mut != nil {
		mut(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{model: m, cache: ca, opt: opt, econ: e}
}

// query builds a Q6 query with the given budget.
func (r *rig) query(t *testing.T, sel float64, b budget.Func) *workload.Query {
	t.Helper()
	tpl := workload.PaperTemplates()[3]
	return &workload.Query{ID: 1, Template: tpl, Selectivity: sel, Budget: b}
}

func (r *rig) handle(t *testing.T, q *workload.Query) Decision {
	t.Helper()
	plans, err := r.opt.Enumerate(q, r.cache)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.econ.HandleQuery(q, plans)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	m, _ := cost.NewModel(catalog.TPCH(1), pricing.EC22008(), cost.DefaultTunables())
	ca := cache.New(0)
	opt, _ := optimizer.New(optimizer.Config{Model: m, AmortN: 10})
	ok := Config{Model: m, Cache: ca, Optimizer: opt, RegretFraction: 0.5, AmortN: 10}
	cases := []func(*Config){
		func(c *Config) { c.Model = nil },
		func(c *Config) { c.Cache = nil },
		func(c *Config) { c.Optimizer = nil },
		func(c *Config) { c.RegretFraction = 0 },
		func(c *Config) { c.RegretFraction = 1 },
		func(c *Config) { c.AmortN = 0 },
		func(c *Config) { c.MaintFailureFactor = -1 },
		func(c *Config) { c.LedgerCap = -1 },
	}
	for i, mut := range cases {
		bad := ok
		mut(&bad)
		if _, err := New(bad); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := New(ok); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestCaseBGenerousBudget(t *testing.T) {
	r := newRig(t, nil)
	q := r.query(t, 5e-4, budget.NewStep(money.FromDollars(1000), time.Hour))
	d := r.handle(t, q)
	if d.Case != CaseB {
		t.Errorf("case = %v, want B", d.Case)
	}
	if d.Chosen == nil || d.Declined {
		t.Fatal("generous budget must yield a chosen plan")
	}
	// Cold cache: the chosen plan must be the backend plan.
	if d.Chosen.Location != plan.Backend {
		t.Errorf("cold cache chose %v", d.Chosen)
	}
	// Profit = budget - price, credited.
	if !d.Profit.IsPositive() {
		t.Error("case B with a fat budget must profit")
	}
	// Credit = initial + charged - exec cost - whatever was invested
	// during the same handling step.
	wantCredit := money.FromDollars(100).
		Add(d.Charged.Sub(d.Chosen.ExecPrice)).
		Sub(r.econ.Stats().Invested)
	if got := r.econ.Credit(); got != wantCredit {
		t.Errorf("credit = %v, want %v", got, wantCredit)
	}
}

func TestCaseAZeroBudget(t *testing.T) {
	r := newRig(t, nil)
	q := r.query(t, 5e-4, budget.Zero{TMax: time.Hour})
	d := r.handle(t, q)
	if d.Case != CaseA {
		t.Errorf("case = %v, want A", d.Case)
	}
	// User accepts the cheapest runnable plan (§VII-A).
	if d.Chosen == nil {
		t.Fatal("accepting user must get a plan")
	}
	if d.Profit.IsPositive() {
		t.Error("case A cannot profit")
	}
	if d.Charged != d.Chosen.Price() {
		t.Errorf("case A charge = %v, want plan price %v", d.Charged, d.Chosen.Price())
	}
}

func TestCaseADeclinedWhenUserWalks(t *testing.T) {
	r := newRig(t, func(c *Config) { c.UserAcceptsOverBudget = false })
	q := r.query(t, 5e-4, budget.Zero{TMax: time.Hour})
	d := r.handle(t, q)
	if !d.Declined || d.Chosen != nil {
		t.Error("user should have walked")
	}
	if d.Charged != 0 || d.Profit != 0 {
		t.Error("declined query must not charge")
	}
	if r.econ.Stats().DeclinedCount != 1 {
		t.Error("declined counter wrong")
	}
}

func TestCaseCPartialBudget(t *testing.T) {
	r := newRig(t, nil)
	// Budget above the cheap cache plans but below the backend price:
	// enumerate cold plans to find a budget strictly between the
	// cheapest and the dearest price.
	q := r.query(t, 5e-4, budget.NewStep(money.FromDollars(1000), time.Hour))
	plans, err := r.opt.Enumerate(q, r.cache)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := money.Max, money.Amount(0)
	for _, p := range plans {
		if pr := p.Price(); pr < lo {
			lo = pr
		}
		if pr := p.Price(); pr > hi {
			hi = pr
		}
	}
	if lo >= hi {
		t.Skip("degenerate plan prices")
	}
	mid := lo.Add(hi.Sub(lo).DivInt(2))
	q2 := r.query(t, 5e-4, budget.NewStep(mid, time.Hour))
	d := r.handle(t, q2)
	if d.Case != CaseC {
		t.Errorf("case = %v, want C (budget %v in [%v,%v])", d.Case, mid, lo, hi)
	}
}

func TestRegretAccumulatesOnMissingStructures(t *testing.T) {
	r := newRig(t, func(c *Config) {
		// High threshold so no investment fires during the test.
		c.RegretFraction = 0.99
		c.InitialCredit = money.FromDollars(1e6)
	})
	q := r.query(t, 5e-4, budget.NewStep(money.FromDollars(1000), time.Hour))
	r.handle(t, q)
	// The column structures of Q6 should carry regret now.
	colID := structure.ColumnID(catalog.Col("lineitem", "l_shipdate"))
	if !r.econ.Regret(colID).IsPositive() {
		t.Errorf("no regret accrued for %s", colID)
	}
	// Repeating the query grows regret.
	before := r.econ.Regret(colID)
	r.handle(t, q)
	if r.econ.Regret(colID) <= before {
		t.Error("regret did not accumulate")
	}
}

func TestInvestmentTriggersAndBuilds(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.RegretFraction = 0.0001 // hair trigger
		c.InitialCredit = money.FromDollars(10000)
	})
	q := r.query(t, 5e-4, budget.NewStep(money.FromDollars(1000), time.Hour))
	var invested []structure.ID
	for i := 0; i < 50 && len(invested) == 0; i++ {
		d := r.handle(t, q)
		invested = d.Investments
	}
	if len(invested) == 0 {
		t.Fatal("no investment after 50 hot queries with a hair trigger")
	}
	if r.cache.PendingCount() == 0 && r.cache.Len() == 0 {
		t.Error("investment did not reach the cache")
	}
	// Credit decreased by the build price.
	if r.econ.Stats().Invested.IsZero() {
		t.Error("invested counter empty")
	}
	// Builds complete and get used.
	r.cache.Advance(r.cache.Clock() + 100*time.Hour)
	r.cache.CompleteDue()
	if r.cache.Len() == 0 {
		t.Error("builds never completed")
	}
}

func TestConservativeProviderSkipsUnaffordableBuilds(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.RegretFraction = 0.0001
		c.InitialCredit = money.FromMicros(10) // nearly broke
	})
	// Zero budget keeps profit at zero, so the account stays broke and
	// no build is ever affordable.
	q := r.query(t, 5e-4, budget.Zero{TMax: time.Hour})
	for i := 0; i < 30; i++ {
		d := r.handle(t, q)
		if len(d.Investments) != 0 {
			t.Fatal("broke conservative provider invested anyway")
		}
	}
}

func TestEconColInvestsOnlyInColumns(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.RegretFraction = 0.0001
		c.InitialCredit = money.FromDollars(10000)
		c.InvestKinds = map[structure.Kind]bool{structure.KindColumn: true}
	})
	q := r.query(t, 5e-4, budget.NewStep(money.FromDollars(1000), time.Hour))
	for i := 0; i < 100; i++ {
		d := r.handle(t, q)
		for _, id := range d.Investments {
			if structure.KindOf(id) != structure.KindColumn {
				t.Fatalf("econ-col built %s", id)
			}
		}
	}
}

func TestIndexInvestmentBuildsMissingColumnsFirst(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.RegretFraction = 0.0001
		c.InitialCredit = money.FromDollars(100000)
		// Only indexes allowed: exercises the Eq. 14 composite path.
		c.InvestKinds = map[structure.Kind]bool{structure.KindIndex: true}
	})
	q := r.query(t, 5e-4, budget.NewStep(money.FromDollars(1000), time.Hour))
	var builtIndex bool
	for i := 0; i < 200 && !builtIndex; i++ {
		d := r.handle(t, q)
		for _, id := range d.Investments {
			if structure.KindOf(id) == structure.KindIndex {
				builtIndex = true
			}
		}
	}
	if !builtIndex {
		t.Fatal("index never invested")
	}
	// The index's key columns must be pending too (built via Eq. 14).
	idxDef := q.Template.IndexCandidates[0]
	for _, ref := range idxDef.Refs() {
		colID := structure.ColumnID(ref)
		if !r.cache.Building(colID) && !r.cache.Has(colID) {
			t.Errorf("index key column %s not scheduled", colID)
		}
	}
}

func TestSettleCollectsAmortizationAndMaintenance(t *testing.T) {
	r := newRig(t, nil)
	// Install Q6 columns with a small build price so the amortized share
	// does not push the cache plan above the backend plan.
	buildPrice := money.FromDollars(0.001)
	tpl := workload.PaperTemplates()[3]
	for _, ref := range tpl.Columns {
		st, _ := structure.ColumnStructure(r.model.Catalog(), ref)
		r.cache.StartBuild(st, 0, buildPrice)
	}
	r.cache.CompleteDue()
	r.cache.Advance(time.Minute) // let a little rent accrue

	q := r.query(t, 5e-3, budget.NewStep(money.FromDollars(1000), time.Hour))
	d := r.handle(t, q)
	if d.Chosen == nil || d.Chosen.Location != plan.Cache {
		t.Fatalf("expected cache plan, got %v", d.Chosen)
	}
	if !d.Chosen.AmortPrice.IsPositive() {
		t.Error("no amortization collected")
	}
	if !d.Chosen.MaintPrice.IsPositive() {
		t.Error("no maintenance collected")
	}
	// Entry state updated.
	e, _ := r.cache.Get(structure.ColumnID(tpl.Columns[0]))
	if e.AmortRemaining == buildPrice {
		t.Error("AmortRemaining not reduced")
	}
	if e.MaintPaidUntil != r.cache.Clock() || !e.UnpaidMaint.IsZero() {
		t.Error("maintenance not marked paid")
	}
	if e.Uses != 1 {
		t.Error("use not recorded")
	}
	// Second query pays no maintenance (just paid) but amortizes again.
	d2 := r.handle(t, q)
	if d2.Chosen.MaintPrice.IsPositive() {
		t.Error("maintenance charged twice at the same instant")
	}
}

func TestMaintenanceFailureEvicts(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.MaintFailureFactor = 1.0
		c.FailureFloor = money.FromMicros(1)
		c.NeverUsedFloor = money.FromMicros(1)
	})
	// A column with a microscopic build price: any accrued rent fails it.
	ref := catalog.Col("lineitem", "l_comment")
	st, _ := structure.ColumnStructure(r.model.Catalog(), ref)
	r.cache.StartBuild(st, 0, money.FromMicros(1))
	r.cache.CompleteDue()
	r.cache.Advance(30 * 24 * time.Hour)

	q := r.query(t, 5e-4, budget.NewStep(money.FromDollars(1000), time.Hour))
	d := r.handle(t, q)
	found := false
	for _, id := range d.Failures {
		if id == st.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("structure with month-long arrears did not fail: %v", d.Failures)
	}
	if r.cache.Has(st.ID) {
		t.Error("failed structure still resident")
	}
	if r.econ.Stats().FailureCount != 1 {
		t.Error("failure counter wrong")
	}
}

func TestFailureFloorProtectsCheapStructures(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.MaintFailureFactor = 1.0
		c.FailureFloor = money.FromDollars(100)
	})
	st, _ := structure.ColumnStructure(r.model.Catalog(), catalog.Col("lineitem", "l_tax"))
	r.cache.StartBuild(st, 0, money.FromMicros(1))
	r.cache.CompleteDue()
	r.cache.Advance(time.Hour)

	q := r.query(t, 5e-4, budget.NewStep(money.FromDollars(1000), time.Hour))
	d := r.handle(t, q)
	if len(d.Failures) != 0 {
		t.Error("floor did not protect the structure")
	}
}

func TestSelectFastestPicksFastest(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Criterion = SelectFastest })
	// Warm the cache with Q6 columns so multiple runnable plans exist.
	tpl := workload.PaperTemplates()[3]
	for _, ref := range tpl.Columns {
		st, _ := structure.ColumnStructure(r.model.Catalog(), ref)
		r.cache.StartBuild(st, 0, 0)
	}
	r.cache.CompleteDue()
	q := r.query(t, 5e-4, budget.NewStep(money.FromDollars(1000), time.Hour))
	d := r.handle(t, q)
	// Capture the chosen plan's time before re-enumerating: Enumerate
	// recycles its plan objects, so d.Chosen is only valid until then.
	chosenTime := d.Chosen.Time()
	plans, _ := r.opt.Enumerate(q, r.cache)
	exist, _ := plan.Partition(plans)
	fastest := plan.Fastest(exist)
	if chosenTime != fastest.Time() {
		t.Errorf("fastest criterion chose time %v, fastest is %v", chosenTime, fastest.Time())
	}
}

func TestSelectMinProfit(t *testing.T) {
	r := newRig(t, func(c *Config) { c.Criterion = SelectMinProfit })
	tpl := workload.PaperTemplates()[3]
	for _, ref := range tpl.Columns {
		st, _ := structure.ColumnStructure(r.model.Catalog(), ref)
		r.cache.StartBuild(st, 0, 0)
	}
	r.cache.CompleteDue()
	q := r.query(t, 5e-4, budget.NewStep(money.FromDollars(1000), time.Hour))
	d := r.handle(t, q)
	// Capture the chosen plan's price before re-enumerating: Enumerate
	// recycles its plan objects, so d.Chosen is only valid until then.
	chosenPrice := d.Chosen.Price()
	// With a step budget the min-profit plan is the most expensive
	// affordable plan.
	plans, _ := r.opt.Enumerate(q, r.cache)
	exist, _ := plan.Partition(plans)
	var maxPrice money.Amount
	for _, p := range exist {
		if p.Price() > maxPrice {
			maxPrice = p.Price()
		}
	}
	if chosenPrice != maxPrice {
		t.Errorf("min-profit chose price %v, want %v", chosenPrice, maxPrice)
	}
}

func TestLedgerLRUGC(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.LedgerCap = 3
		c.RegretFraction = 0.99 // don't invest
		c.InitialCredit = money.FromDollars(1e6)
	})
	// Run all 7 templates: many distinct structures compete for 3 slots.
	for i, tpl := range workload.PaperTemplates() {
		q := &workload.Query{
			ID: int64(i), Template: tpl, Selectivity: tpl.SelMin,
			Budget: budget.NewStep(money.FromDollars(1000), time.Hour),
		}
		r.handle(t, q)
	}
	if got := r.econ.Stats().LedgerSize; got > 3 {
		t.Errorf("ledger size = %d, want <= 3", got)
	}
}

func TestHandleQueryErrors(t *testing.T) {
	r := newRig(t, nil)
	if _, err := r.econ.HandleQuery(nil, nil); err == nil {
		t.Error("nil query accepted")
	}
	q := r.query(t, 5e-4, budget.Zero{TMax: time.Second})
	if _, err := r.econ.HandleQuery(q, nil); err == nil {
		t.Error("empty plan set accepted")
	}
	// A plan set with no runnable plan is a contract violation.
	p := &plan.Plan{Query: q, Structures: structure.NewSet(), Missing: []structure.ID{"col:x.y"}}
	if _, err := r.econ.HandleQuery(q, []*plan.Plan{p}); err == nil {
		t.Error("no-runnable-plan set accepted")
	}
}

func TestCriterionAndCaseStrings(t *testing.T) {
	for _, c := range []Criterion{SelectCheapest, SelectFastest, SelectMinProfit, Criterion(7)} {
		if c.String() == "" {
			t.Error("empty criterion string")
		}
	}
	if CaseA.String() != "A" || CaseB.String() != "B" || CaseC.String() != "C" {
		t.Error("case strings wrong")
	}
}

func TestResolveID(t *testing.T) {
	cat := catalog.TPCH(1)
	// CPU node.
	st, err := ResolveID(cat, structure.CPUNodeID(3))
	if err != nil || st.Kind != structure.KindCPUNode || st.NodeOrdinal != 3 {
		t.Errorf("cpu resolve = %+v, %v", st, err)
	}
	// Column.
	ref := catalog.Col("lineitem", "l_shipdate")
	st, err = ResolveID(cat, structure.ColumnID(ref))
	if err != nil || st.Kind != structure.KindColumn || st.Column != ref {
		t.Errorf("col resolve = %+v, %v", st, err)
	}
	// Index.
	def := catalog.IndexDef{Table: "orders", Columns: []string{"o_orderdate", "o_custkey"}}
	st, err = ResolveID(cat, structure.IndexID(def))
	if err != nil || st.Kind != structure.KindIndex || st.Index.Name() != def.Name() {
		t.Errorf("idx resolve = %+v, %v", st, err)
	}
	// Round trips agree on bytes.
	orig, _ := structure.IndexStructure(cat, def)
	if st.Bytes != orig.Bytes {
		t.Error("resolved size differs")
	}
	// Bad IDs.
	for _, bad := range []structure.ID{"", "cpu:x", "cpu:1", "col:noname", "col:zz.y", "idx_t", "idx_(a)", "idx_t()", "bogus"} {
		if _, err := ResolveID(cat, bad); err == nil {
			t.Errorf("bad id %q accepted", bad)
		}
	}
}
