package economy

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/money"
	"repro/internal/plan"
)

// This file holds the economy's adversarial-audit hooks: a pure
// counterfactual quote (what would this plan set have cost under a
// different budget declaration?) and a full self-audit of the books.
// Both exist so the adversarial property tests and FuzzEconomyAdversarial
// can check the economy from the outside without reaching into unexported
// state — and so a violation report names the broken law, not just a
// mismatched number.

// QuoteResult is the outcome of a counterfactual decision: how the
// economy would classify, select and charge a query's plan set under an
// arbitrary budget declaration, computed without mutating any state.
type QuoteResult struct {
	Case     Case
	Chosen   *plan.Plan
	Declined bool
	Charged  money.Amount
	Profit   money.Amount
}

// Quote replays the §IV-C classification, plan selection and settlement
// pricing for an already-enumerated plan set under budget b, touching no
// ledger, cache or market state. It is the honest-replay oracle behind
// the "no tenant profits from lying" invariant: for any decision the real
// economy made for a declared budget, Quote(plans, truthfulBudget) is
// what honesty would have produced on the exact same market state —
// comparing the two needs no second simulation and is immune to
// investment-history divergence.
//
// Quote deliberately re-derives the decision from the same rules
// HandleQuery applies (affordability over the full plan set, the scheme
// criterion over the affordable runnable set, §VII-A over-budget
// acceptance, charged = max(price, B(t))) but through its own code path:
// it allocates nothing from the economy's scratch space and is safe to
// call between HandleQuery calls on the same plan slice.
func (e *Economy) Quote(plans []*plan.Plan, b budget.Func) QuoteResult {
	var out QuoteResult
	affordable := func(p *plan.Plan) bool {
		return b.At(p.Time()) >= p.Price()
	}
	nAfford := 0
	var exist, afford []*plan.Plan
	for _, p := range plans {
		runnable := p.Runnable()
		if runnable {
			exist = append(exist, p)
		}
		if affordable(p) {
			nAfford++
			if runnable {
				afford = append(afford, p)
			}
		}
	}
	switch {
	case nAfford == 0:
		out.Case = CaseA
	case nAfford == len(plans):
		out.Case = CaseB
	default:
		out.Case = CaseC
	}

	var chosen *plan.Plan
	switch {
	case len(afford) > 0:
		chosen = e.selectPlanWith(b, afford)
	case e.cfg.UserAcceptsOverBudget:
		chosen = plan.Cheapest(exist)
	default:
		out.Declined = true
	}
	if chosen != nil {
		out.Chosen = chosen
		price := chosen.Price()
		charged := price
		if at := b.At(chosen.Time()); at > price {
			charged = at
		}
		out.Charged = charged
		out.Profit = charged.Sub(price)
	}
	return out
}

// selectPlanWith is selectPlan against an explicit budget function.
func (e *Economy) selectPlanWith(b budget.Func, plans []*plan.Plan) *plan.Plan {
	switch e.cfg.Criterion {
	case SelectFastest:
		return plan.Fastest(plans)
	case SelectMinProfit:
		var best *plan.Plan
		var bestProfit money.Amount
		for _, p := range plans {
			profit := b.At(p.Time()).Sub(p.Price())
			if best == nil || profit < bestProfit ||
				(profit == bestProfit && p.Time() < best.Time()) {
				best, bestProfit = p, profit
			}
		}
		return best
	default:
		return plan.Cheapest(plans)
	}
}

// CheckInvariants audits every conservation law the books must satisfy
// at any point between queries, returning the first violation:
//
//   - regret entries are non-negative, their count respects the cap, and
//     no entry's LRU stamp runs ahead of the ledger clock;
//   - regret conserves: live + dropped never exceeds accrued (the
//     difference is what investment legitimately consumed), and all
//     three counters are non-negative;
//   - money attribution counters (spend, profit, invested, recovered)
//     are non-negative and declines never exceed queries;
//   - a conservative account's credit never goes negative;
//   - altruistic mirrors carry no account state (credit, investments or
//     live entries) — only the communal pool plays the market;
//   - under the altruistic provider every financed structure is owned by
//     the pool ("").
//
// It is O(total ledger entries): cheap enough for a property test to
// call between every query, too hot for the serving path.
func (e *Economy) CheckInvariants() error {
	check := func(l *Ledger, isAccount bool) error {
		var live money.Amount
		for id, entry := range l.entries {
			if entry.regret.IsNegative() {
				return fmt.Errorf("ledger %q: negative regret %v on %s", l.tenant, entry.regret, id)
			}
			if entry.touched > l.clock {
				return fmt.Errorf("ledger %q: entry %s touched at %d beyond clock %d", l.tenant, id, entry.touched, l.clock)
			}
			live = live.Add(entry.regret)
		}
		if len(l.entries) > l.cap {
			return fmt.Errorf("ledger %q: %d live entries exceed cap %d", l.tenant, len(l.entries), l.cap)
		}
		if l.regretAccrued.IsNegative() || l.regretDropped.IsNegative() {
			return fmt.Errorf("ledger %q: negative regret counters (accrued %v, dropped %v)", l.tenant, l.regretAccrued, l.regretDropped)
		}
		if isAccount && live.Add(l.regretDropped) > l.regretAccrued {
			return fmt.Errorf("ledger %q: live %v + dropped %v exceeds accrued %v — regret was minted",
				l.tenant, live, l.regretDropped, l.regretAccrued)
		}
		if l.spend.IsNegative() || l.profitTotal.IsNegative() || l.invested.IsNegative() || l.recovered.IsNegative() {
			return fmt.Errorf("ledger %q: negative money counter (spend %v, profit %v, invested %v, recovered %v)",
				l.tenant, l.spend, l.profitTotal, l.invested, l.recovered)
		}
		if l.declinedCount > l.queries {
			return fmt.Errorf("ledger %q: %d declines exceed %d queries", l.tenant, l.declinedCount, l.queries)
		}
		if e.cfg.Conservative && isAccount && l.credit.IsNegative() {
			return fmt.Errorf("ledger %q: conservative account went negative: %v", l.tenant, l.credit)
		}
		return nil
	}
	if e.pool != nil {
		if err := check(e.pool, true); err != nil {
			return err
		}
	}
	for _, l := range e.tenants {
		if err := check(l, e.pool == nil); err != nil {
			return err
		}
		if e.pool != nil {
			if l.credit != 0 || l.invested != 0 || l.investCount != 0 || len(l.entries) != 0 || l.regretDropped != 0 {
				return fmt.Errorf("altruistic mirror %q carries account state (credit %v, invested %v, %d entries)",
					l.tenant, l.credit, l.invested, len(l.entries))
			}
		}
	}
	if e.pool != nil {
		for id, owner := range e.market.owner {
			if owner != "" {
				return fmt.Errorf("altruistic provider recorded tenant %q as owner of %s", owner, id)
			}
		}
	}
	return nil
}
