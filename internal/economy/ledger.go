package economy

import (
	"slices"

	"repro/internal/money"
	"repro/internal/structure"
)

// Ledger is one tenant's account with the cloud: credit, spend, profit
// and regret attribution, plus the live per-structure regret entries that
// drive the Eq. 3 investment test when the provider is selfish.
//
// Under the altruistic provider there is one communal Ledger (the pool)
// holding the account and the live regret map — exactly the single-account
// economy of §IV — while per-tenant Ledgers act as mirrors: they attribute
// spend, profit and accrued regret to the tenant that generated them but
// carry no credit of their own. Under the selfish provider every tenant
// Ledger is a real account: it is seeded with the initial capital on first
// contact, its own regret alone triggers builds, and those builds are
// charged to (and amortized back into) it.
type Ledger struct {
	tenant string
	credit money.Amount

	// entries is the live regret map (Eq. 1–2 accumulation, LRU-capped
	// per §IV-B); clock is its logical LRU clock.
	entries map[structure.ID]*regretEntry
	clock   int64
	cap     int

	// Attribution counters. regretAccrued is cumulative (monotone) so
	// per-tenant regret stays reportable and mergeable even after ledger
	// entries are consumed by investment or garbage collected.
	// regretDropped is the cumulative regret discarded by cap evictions:
	// the live map may forget a structure, but the books never silently
	// lose the regret it had accrued (live + dropped <= accrued always).
	spend         money.Amount
	profitTotal   money.Amount
	invested      money.Amount
	recovered     money.Amount
	regretAccrued money.Amount
	regretDropped money.Amount
	investCount   int64
	declinedCount int64
	queries       int64
	cacheAnswered int64

	// idScratch backs sortedIDs, reused across investment scans.
	idScratch []structure.ID
}

// newLedger opens a ledger with the given seed capital and regret cap.
func newLedger(tenant string, seed money.Amount, cap int) *Ledger {
	return &Ledger{
		tenant:  tenant,
		credit:  seed,
		entries: make(map[structure.ID]*regretEntry),
		cap:     cap,
	}
}

// Tenant returns the ledger's tenant name ("" for the communal pool).
func (l *Ledger) Tenant() string { return l.tenant }

// Credit returns the account balance.
func (l *Ledger) Credit() money.Amount { return l.credit }

// regretOf returns the live regret accumulated against a structure.
func (l *Ledger) regretOf(id structure.ID) money.Amount {
	if e, ok := l.entries[id]; ok {
		return e.regret
	}
	return 0
}

// add accrues a regret share against a structure, touching its LRU slot.
// The share is applied before the cap is enforced, so a fresh entry
// competes with its real regret and timestamp: the old order (insert
// empty, gc, then fill) let a full ledger evict every newcomer at
// touched=0 — the map froze at its first cap entries and new structures
// could never accrue regret again.
func (l *Ledger) add(id structure.ID, share money.Amount) {
	l.clock++
	entry, ok := l.entries[id]
	if !ok {
		entry = &regretEntry{}
		l.entries[id] = entry
	}
	entry.regret = entry.regret.Add(share)
	entry.touched = l.clock
	l.regretAccrued = l.regretAccrued.Add(share)
	if !ok {
		l.gc()
	}
}

// gc enforces the cap on the regret map (§IV-B garbage collection). The
// victim is the entry with the least regret, oldest-touched among ties —
// plain LRU would let an adversary cold-cycle one-off structure IDs
// through the map and evict a victim structure's accumulating regret
// before it ever reached the Eq. 3 bar, defeating investment forever.
// Least-regret eviction makes that attack self-defeating (the spray's
// own near-zero entries are the victims) and whatever is evicted is
// accounted in regretDropped rather than silently discarded.
func (l *Ledger) gc() {
	if len(l.entries) <= l.cap {
		return
	}
	var victim structure.ID
	var ve *regretEntry
	for id, entry := range l.entries {
		if ve == nil || entry.regret < ve.regret ||
			(entry.regret == ve.regret && entry.touched < ve.touched) {
			victim, ve = id, entry
		}
	}
	l.regretDropped = l.regretDropped.Add(ve.regret)
	delete(l.entries, victim)
}

// sortedIDs returns the regret map's keys in deterministic order for the
// investment scan. The returned slice is a per-ledger scratch buffer,
// valid until the next call.
func (l *Ledger) sortedIDs() []structure.ID {
	ids := l.idScratch[:0]
	for id := range l.entries {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	l.idScratch = ids
	return ids
}

// TenantStats is the reportable snapshot of one tenant's ledger.
type TenantStats struct {
	// Tenant is the tenant name ("" for untagged queries).
	Tenant string
	// Traffic attribution.
	Queries       int64
	Declined      int64
	CacheAnswered int64
	// Money attribution. Credit is zero under the altruistic provider,
	// whose account is communal; Spend is the total the tenant's users
	// were charged; RegretAccrued is cumulative Eq. 1–2 regret attributed
	// to the tenant's queries.
	Credit        money.Amount
	Spend         money.Amount
	Profit        money.Amount
	RegretAccrued money.Amount
	// RegretLive is the sum of the live regret entries; RegretDropped is
	// the cumulative regret discarded by ledger-cap evictions. Both are
	// zero under the altruistic provider, whose live map is communal, and
	// RegretLive + RegretDropped never exceeds the account's share of
	// RegretAccrued (the rest was consumed by investment).
	RegretLive    money.Amount
	RegretDropped money.Amount
	Invested      money.Amount
	Recovered     money.Amount
	// InvestCount is the number of structure builds charged to this
	// tenant (always zero under the altruistic provider).
	InvestCount int64
	// LedgerSize is the tenant's live regret-map size (zero under the
	// altruistic provider, whose live map is communal).
	LedgerSize int
}

// liveRegret sums the live regret entries.
func (l *Ledger) liveRegret() money.Amount {
	var total money.Amount
	for _, e := range l.entries {
		total = total.Add(e.regret)
	}
	return total
}

// stats snapshots the ledger.
func (l *Ledger) stats() TenantStats {
	return TenantStats{
		Tenant:        l.tenant,
		Queries:       l.queries,
		Declined:      l.declinedCount,
		CacheAnswered: l.cacheAnswered,
		Credit:        l.credit,
		Spend:         l.spend,
		Profit:        l.profitTotal,
		RegretAccrued: l.regretAccrued,
		RegretLive:    l.liveRegret(),
		RegretDropped: l.regretDropped,
		Invested:      l.invested,
		Recovered:     l.recovered,
		InvestCount:   l.investCount,
		LedgerSize:    len(l.entries),
	}
}
