package economy

import (
	"slices"

	"repro/internal/money"
	"repro/internal/structure"
)

// Ledger is one tenant's account with the cloud: credit, spend, profit
// and regret attribution, plus the live per-structure regret entries that
// drive the Eq. 3 investment test when the provider is selfish.
//
// Under the altruistic provider there is one communal Ledger (the pool)
// holding the account and the live regret map — exactly the single-account
// economy of §IV — while per-tenant Ledgers act as mirrors: they attribute
// spend, profit and accrued regret to the tenant that generated them but
// carry no credit of their own. Under the selfish provider every tenant
// Ledger is a real account: it is seeded with the initial capital on first
// contact, its own regret alone triggers builds, and those builds are
// charged to (and amortized back into) it.
type Ledger struct {
	tenant string
	credit money.Amount

	// entries is the live regret map (Eq. 1–2 accumulation, LRU-capped
	// per §IV-B); clock is its logical LRU clock.
	entries map[structure.ID]*regretEntry
	clock   int64
	cap     int

	// Attribution counters. regretAccrued is cumulative (monotone) so
	// per-tenant regret stays reportable and mergeable even after ledger
	// entries are consumed by investment or garbage collected.
	spend         money.Amount
	profitTotal   money.Amount
	invested      money.Amount
	recovered     money.Amount
	regretAccrued money.Amount
	investCount   int64
	declinedCount int64
	queries       int64
	cacheAnswered int64

	// idScratch backs sortedIDs, reused across investment scans.
	idScratch []structure.ID
}

// newLedger opens a ledger with the given seed capital and regret cap.
func newLedger(tenant string, seed money.Amount, cap int) *Ledger {
	return &Ledger{
		tenant:  tenant,
		credit:  seed,
		entries: make(map[structure.ID]*regretEntry),
		cap:     cap,
	}
}

// Tenant returns the ledger's tenant name ("" for the communal pool).
func (l *Ledger) Tenant() string { return l.tenant }

// Credit returns the account balance.
func (l *Ledger) Credit() money.Amount { return l.credit }

// regretOf returns the live regret accumulated against a structure.
func (l *Ledger) regretOf(id structure.ID) money.Amount {
	if e, ok := l.entries[id]; ok {
		return e.regret
	}
	return 0
}

// add accrues a regret share against a structure, touching its LRU slot.
func (l *Ledger) add(id structure.ID, share money.Amount) {
	l.clock++
	entry, ok := l.entries[id]
	if !ok {
		entry = &regretEntry{}
		l.entries[id] = entry
		l.gc()
	}
	entry.regret = entry.regret.Add(share)
	entry.touched = l.clock
	l.regretAccrued = l.regretAccrued.Add(share)
}

// gc enforces the LRU cap on the regret map (§IV-B "garbage collected
// using LRU policy").
func (l *Ledger) gc() {
	if len(l.entries) <= l.cap {
		return
	}
	var victim structure.ID
	var oldest int64 = 1<<63 - 1
	for id, entry := range l.entries {
		if entry.touched < oldest {
			oldest, victim = entry.touched, id
		}
	}
	delete(l.entries, victim)
}

// sortedIDs returns the regret map's keys in deterministic order for the
// investment scan. The returned slice is a per-ledger scratch buffer,
// valid until the next call.
func (l *Ledger) sortedIDs() []structure.ID {
	ids := l.idScratch[:0]
	for id := range l.entries {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	l.idScratch = ids
	return ids
}

// TenantStats is the reportable snapshot of one tenant's ledger.
type TenantStats struct {
	// Tenant is the tenant name ("" for untagged queries).
	Tenant string
	// Traffic attribution.
	Queries       int64
	Declined      int64
	CacheAnswered int64
	// Money attribution. Credit is zero under the altruistic provider,
	// whose account is communal; Spend is the total the tenant's users
	// were charged; RegretAccrued is cumulative Eq. 1–2 regret attributed
	// to the tenant's queries.
	Credit        money.Amount
	Spend         money.Amount
	Profit        money.Amount
	RegretAccrued money.Amount
	Invested      money.Amount
	Recovered     money.Amount
	// InvestCount is the number of structure builds charged to this
	// tenant (always zero under the altruistic provider).
	InvestCount int64
	// LedgerSize is the tenant's live regret-map size (zero under the
	// altruistic provider, whose live map is communal).
	LedgerSize int
}

// stats snapshots the ledger.
func (l *Ledger) stats() TenantStats {
	return TenantStats{
		Tenant:        l.tenant,
		Queries:       l.queries,
		Declined:      l.declinedCount,
		CacheAnswered: l.cacheAnswered,
		Credit:        l.credit,
		Spend:         l.spend,
		Profit:        l.profitTotal,
		RegretAccrued: l.regretAccrued,
		Invested:      l.invested,
		Recovered:     l.recovered,
		InvestCount:   l.investCount,
		LedgerSize:    len(l.entries),
	}
}
