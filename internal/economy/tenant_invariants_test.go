package economy

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/money"
	"repro/internal/optimizer"
	"repro/internal/pricing"
	"repro/internal/workload"
)

// TestTenantLedgerReconciliation is the e2e ledger-sum check promoted to
// a fast in-process property test: across random query streams and both
// providers, the tenant ledgers must reconcile exactly with the market's
// spend and recovery flows. The conservation laws under test:
//
//   - traffic: Σ tenant queries/declines == the economy's totals;
//   - payments: Σ tenant spend == Σ charged, Σ tenant profit == total;
//   - money: every dollar of credit is traceable —
//     altruistic: pool credit == seed + Σ(charged − exec) − invested;
//     selfish:    Σ credit == seeds + Σ profit + Σ recovered − invested
//     (recovery reimburses owners from collected amort + maintenance);
//   - sanity: no conservative account ever goes negative, mirrors carry
//     no credit under the altruistic provider.
func TestTenantLedgerReconciliation(t *testing.T) {
	tenants := []string{"", "alice", "bob", "carol", "dave", "erin"}
	for _, provider := range []Provider{ProviderAltruistic, ProviderSelfish} {
		t.Run(provider.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(4200 + int64(provider)))
			cat := catalog.TPCH(20)
			model, err := cost.NewModel(cat, pricing.EC22008(), cost.DefaultTunables())
			if err != nil {
				t.Fatal(err)
			}
			ca := cache.New(0)
			opt, err := optimizer.New(optimizer.Config{Model: model, AmortN: 5000, AllowIndexes: true, AllowNodes: true})
			if err != nil {
				t.Fatal(err)
			}
			initial := money.FromDollars(25)
			econ, err := New(Config{
				Model:              model,
				Cache:              ca,
				Optimizer:          opt,
				Criterion:          SelectCheapest,
				Provider:           provider,
				RegretFraction:     0.0002,
				AmortN:             5000,
				InitialCredit:      initial,
				Conservative:       true,
				MaintFailureFactor: 1.0,
				FailureFloor:       money.FromDollars(0.0001),
				NeverUsedFloor:     money.FromDollars(0.5),
				InvestBackoff:      2,
			})
			if err != nil {
				t.Fatal(err)
			}

			tpls := workload.PaperTemplates()
			for _, tpl := range tpls {
				if err := tpl.Validate(cat); err != nil {
					t.Fatal(err)
				}
			}

			var chargedTotal, execTotal, maintTotal money.Amount
			var queries, declined int64
			const n = 3000

			reconcile := func() {
				t.Helper()
				s := econ.Stats()
				ts := econ.TenantStats()

				var sumQ, sumDecl, sumInvestCount int64
				var sumSpend, sumProfit, sumCredit, sumInvested, sumRecovered money.Amount
				for _, l := range ts {
					sumQ += l.Queries
					sumDecl += l.Declined
					sumInvestCount += l.InvestCount
					sumSpend = sumSpend.Add(l.Spend)
					sumProfit = sumProfit.Add(l.Profit)
					sumCredit = sumCredit.Add(l.Credit)
					sumInvested = sumInvested.Add(l.Invested)
					sumRecovered = sumRecovered.Add(l.Recovered)
					if l.Credit.IsNegative() {
						t.Fatalf("tenant %q account negative: %v", l.Tenant, l.Credit)
					}
					if provider == ProviderAltruistic && (l.Credit != 0 || l.Invested != 0 || l.InvestCount != 0) {
						t.Fatalf("altruistic mirror %q carries account state: %+v", l.Tenant, l)
					}
					if l.Declined > l.Queries {
						t.Fatalf("tenant %q declined %d of %d", l.Tenant, l.Declined, l.Queries)
					}
				}
				if sumQ != queries {
					t.Fatalf("tenant ledgers account %d of %d queries", sumQ, queries)
				}
				if sumDecl != declined || s.DeclinedCount != declined {
					t.Fatalf("declines: tenants %d, stats %d, stream %d", sumDecl, s.DeclinedCount, declined)
				}
				if sumSpend != chargedTotal {
					t.Fatalf("tenant spend sums to %v, users were charged %v", sumSpend, chargedTotal)
				}
				if sumProfit != s.ProfitTotal {
					t.Fatalf("tenant profit sums to %v, stats says %v", sumProfit, s.ProfitTotal)
				}

				switch provider {
				case ProviderAltruistic:
					// One communal account: seed + margins − investments.
					want := initial.Add(chargedTotal).Sub(execTotal).Sub(s.Invested)
					if got := econ.Credit(); got != want {
						t.Fatalf("pool credit %v != seed %v + charged %v − exec %v − invested %v (= %v)",
							got, initial, chargedTotal, execTotal, s.Invested, want)
					}
				case ProviderSelfish:
					// Per-tenant accounts: every ledger opened with the
					// seed; profit stays with the payer, recovery flows to
					// owners, builds deduct from financiers.
					seeds := initial.MulInt(int64(len(ts)))
					want := seeds.Add(sumProfit).Add(sumRecovered).Sub(sumInvested)
					if got := econ.Credit(); got != want {
						t.Fatalf("Σ credit %v != seeds %v + profit %v + recovered %v − invested %v (= %v)",
							got, seeds, sumProfit, sumRecovered, sumInvested, want)
					}
					if sumInvested != s.Invested || sumRecovered != s.Recovered || sumInvestCount != s.InvestCount {
						t.Fatalf("tenant invest/recover sums (%v/%v/%d) != stats (%v/%v/%d)",
							sumInvested, sumRecovered, sumInvestCount, s.Invested, s.Recovered, s.InvestCount)
					}
					// Recovery reimburses owners for exactly the amortized
					// shares (inside Price, Eq. 4) plus the maintenance
					// arrears (priced alongside, footnote 3) of the chosen
					// plans; it can fall short only by the components of a
					// structure the same query's failure sweep evicted
					// after enumeration.
					if margin := chargedTotal.Sub(execTotal).Sub(sumProfit).Add(maintTotal); sumRecovered > margin {
						t.Fatalf("recovered %v exceeds collected amort+maint margin %v", sumRecovered, margin)
					}
				}
			}

			for i := 0; i < n; i++ {
				tpl := tpls[rng.Intn(len(tpls))]
				q := &workload.Query{
					ID:          int64(i + 1),
					Tenant:      tenants[rng.Intn(len(tenants))],
					Template:    tpl,
					Selectivity: tpl.SelMin + rng.Float64()*(tpl.SelMax-tpl.SelMin),
					Arrival:     ca.Clock() + time.Duration(1+rng.Intn(9_000))*time.Millisecond,
					Budget: budget.NewStep(
						money.FromDollars(rng.Float64()*0.02),
						time.Duration(1+rng.Intn(60))*time.Second),
				}
				ca.Advance(q.Arrival)
				ca.CompleteDue()
				plans, err := opt.Enumerate(q, ca)
				if err != nil {
					t.Fatal(err)
				}
				d, err := econ.HandleQuery(q, plans)
				if err != nil {
					t.Fatal(err)
				}
				queries++
				if d.Declined {
					declined++
				}
				if d.Chosen != nil {
					chargedTotal = chargedTotal.Add(d.Charged)
					execTotal = execTotal.Add(d.Chosen.ExecPrice)
					maintTotal = maintTotal.Add(d.Chosen.MaintPrice)
				}
				if i%97 == 0 {
					reconcile()
				}
			}
			reconcile()

			// The run must have exercised the interesting paths.
			s := econ.Stats()
			if s.InvestCount == 0 {
				t.Error("no investments in the random stream")
			}
			if declined == 0 {
				t.Error("no declines in the random stream (budgets too generous to exercise case A)")
			}
			if len(econ.TenantStats()) != len(tenants) {
				t.Errorf("%d tenant ledgers, want %d", len(econ.TenantStats()), len(tenants))
			}
		})
	}
}
