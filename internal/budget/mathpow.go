package budget

import "math"

// mathPow isolates the math.Pow dependency so the fast paths in pow stay
// branch-predictable.
func mathPow(base, k float64) float64 { return math.Pow(base, k) }
