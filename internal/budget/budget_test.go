package budget

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/money"
)

var (
	price = money.FromDollars(1)
	tmax  = 10 * time.Second
)

func TestStep(t *testing.T) {
	b := NewStep(price, tmax)
	if got := b.At(5 * time.Second); got != price {
		t.Errorf("At(5s) = %v, want %v", got, price)
	}
	if got := b.At(tmax); got != price {
		t.Errorf("At(tmax) = %v, want %v (inclusive)", got, price)
	}
	if got := b.At(tmax + 1); got != 0 {
		t.Errorf("At(>tmax) = %v, want 0", got)
	}
	if got := b.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0 (support is open at 0)", got)
	}
	if got := b.At(-time.Second); got != 0 {
		t.Errorf("At(<0) = %v, want 0", got)
	}
	if b.Tmax() != tmax {
		t.Errorf("Tmax = %v", b.Tmax())
	}
}

func TestLinear(t *testing.T) {
	b := NewLinear(price, tmax)
	if got := b.At(5 * time.Second); got != price.MulFloat(0.5) {
		t.Errorf("At(5s) = %v, want half price", got)
	}
	if got := b.At(tmax); got != 0 {
		t.Errorf("At(tmax) = %v, want 0", got)
	}
	if got := b.At(time.Nanosecond); got <= price.MulFloat(0.99) {
		t.Errorf("At(~0) = %v, want ~full price", got)
	}
	if got := b.At(tmax * 2); got != 0 {
		t.Errorf("At(2*tmax) = %v, want 0", got)
	}
}

func TestConvexBelowLinear(t *testing.T) {
	// Fig. 1(b): convex functions sit below the linear chord.
	conv := NewConvex(price, tmax, 2)
	lin := NewLinear(price, tmax)
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		tt := time.Duration(float64(tmax) * frac)
		if conv.At(tt) > lin.At(tt) {
			t.Errorf("convex(%v)=%v above linear=%v", tt, conv.At(tt), lin.At(tt))
		}
	}
}

func TestConcaveAboveLinear(t *testing.T) {
	// Fig. 1(c): concave functions sit above the linear chord.
	conc := NewConcave(price, tmax, 2)
	lin := NewLinear(price, tmax)
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		tt := time.Duration(float64(tmax) * frac)
		if conc.At(tt) < lin.At(tt) {
			t.Errorf("concave(%v)=%v below linear=%v", tt, conc.At(tt), lin.At(tt))
		}
	}
}

func TestCurvatureDefaulting(t *testing.T) {
	// K <= 1 falls back to 2 rather than producing a non-convex curve.
	a := NewConvex(price, tmax, 0).At(5 * time.Second)
	b := NewConvex(price, tmax, 2).At(5 * time.Second)
	if a != b {
		t.Errorf("K=0 should behave as K=2: %v vs %v", a, b)
	}
	c := NewConcave(price, tmax, -1).At(5 * time.Second)
	d := NewConcave(price, tmax, 2).At(5 * time.Second)
	if c != d {
		t.Errorf("K=-1 should behave as K=2: %v vs %v", c, d)
	}
}

func TestValidateAcceptsCanonicalShapes(t *testing.T) {
	shapes := []Func{
		NewStep(price, tmax),
		NewLinear(price, tmax),
		NewConvex(price, tmax, 2),
		NewConvex(price, tmax, 3),
		NewConcave(price, tmax, 2),
		Zero{TMax: tmax},
	}
	for _, f := range shapes {
		if err := Validate(f); err != nil {
			t.Errorf("Validate(%T) = %v", f, err)
		}
	}
}

type increasing struct{}

func (increasing) At(t time.Duration) money.Amount { return money.Amount(t) }
func (increasing) Tmax() time.Duration             { return time.Second }

func TestValidateRejectsIncreasing(t *testing.T) {
	if err := Validate(increasing{}); err != ErrNotDescending {
		t.Errorf("Validate = %v, want ErrNotDescending", err)
	}
}

type badSupport struct{}

func (badSupport) At(time.Duration) money.Amount { return 0 }
func (badSupport) Tmax() time.Duration           { return 0 }

func TestValidateRejectsBadSupport(t *testing.T) {
	if err := Validate(badSupport{}); err != ErrBadSupport {
		t.Errorf("Validate = %v, want ErrBadSupport", err)
	}
}

func TestPiecewise(t *testing.T) {
	p, err := NewPiecewise([]Point{
		{T: 2 * time.Second, Price: money.FromDollars(1)},
		{T: 8 * time.Second, Price: money.FromDollars(0.25)},
		{T: 4 * time.Second, Price: money.FromDollars(0.75)},
	})
	if err != nil {
		t.Fatalf("NewPiecewise: %v", err)
	}
	if got := p.Tmax(); got != 8*time.Second {
		t.Errorf("Tmax = %v", got)
	}
	// Before first knot: first price.
	if got := p.At(time.Second); got != money.FromDollars(1) {
		t.Errorf("At(1s) = %v", got)
	}
	// At a knot: knot price.
	if got := p.At(4 * time.Second); got != money.FromDollars(0.75) {
		t.Errorf("At(4s) = %v", got)
	}
	// Interpolation between 4s ($0.75) and 8s ($0.25): at 6s → $0.50.
	if got := p.At(6 * time.Second); got != money.FromDollars(0.50) {
		t.Errorf("At(6s) = %v, want $0.50", got)
	}
	// Beyond support: zero.
	if got := p.At(9 * time.Second); got != 0 {
		t.Errorf("At(9s) = %v", got)
	}
	if err := Validate(p); err != nil {
		t.Errorf("Validate piecewise: %v", err)
	}
}

func TestPiecewiseRejections(t *testing.T) {
	if _, err := NewPiecewise(nil); err == nil {
		t.Error("empty knots accepted")
	}
	if _, err := NewPiecewise([]Point{{T: 0, Price: price}}); err == nil {
		t.Error("knot at t=0 accepted")
	}
	if _, err := NewPiecewise([]Point{
		{T: time.Second, Price: price}, {T: time.Second, Price: price},
	}); err == nil {
		t.Error("duplicate knot accepted")
	}
	if _, err := NewPiecewise([]Point{
		{T: time.Second, Price: money.FromDollars(1)},
		{T: 2 * time.Second, Price: money.FromDollars(2)},
	}); err != ErrNotDescending {
		t.Error("increasing knots accepted")
	}
}

func TestZero(t *testing.T) {
	z := Zero{TMax: tmax}
	if z.At(time.Second) != 0 || z.Tmax() != tmax {
		t.Error("Zero misbehaves")
	}
}

// Property: all canonical shapes are non-increasing for random parameters.
func TestShapesNonIncreasingProperty(t *testing.T) {
	f := func(cents uint16, secs uint8, t1n, t2n uint16) bool {
		p := money.FromCents(int64(cents) + 1)
		tm := time.Duration(int(secs)+1) * time.Second
		ta := time.Duration(t1n) * tm / 65536
		tb := time.Duration(t2n) * tm / 65536
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta <= 0 {
			ta = 1
		}
		for _, fn := range []Func{
			NewStep(p, tm), NewLinear(p, tm), NewConvex(p, tm, 2), NewConcave(p, tm, 3),
		} {
			if fn.At(ta) < fn.At(tb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: budgets never pay more than the headline price nor go negative.
func TestShapesBoundedProperty(t *testing.T) {
	f := func(cents uint16, tn uint16) bool {
		p := money.FromCents(int64(cents))
		tt := time.Duration(tn) * time.Millisecond
		for _, fn := range []Func{
			NewStep(p, tmax), NewLinear(p, tmax), NewConvex(p, tmax, 2), NewConcave(p, tmax, 2),
		} {
			v := fn.At(tt)
			if v < 0 || v > p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
