// Package budget implements the user budget functions B_Q(t) of §IV-C.
//
// A budget function maps a promised execution time t ∈ (0, tmax] to the
// price the user is willing to pay for that service level. The paper
// requires B_Q to be non-increasing in t and supported on a bounded
// interval; Figure 1 sketches the three canonical shapes (step, convex,
// concave) that this package provides, plus a general piecewise-linear
// form that can express any combination of them.
package budget

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/money"
)

// Func is a user budget function. Implementations must be non-increasing in
// t over (0, Tmax]; At must return zero for t > Tmax ("the user walks away").
type Func interface {
	// At returns the price the user pays for completing the query in
	// time t. t beyond Tmax returns zero.
	At(t time.Duration) money.Amount
	// Tmax is the largest execution time the user tolerates.
	Tmax() time.Duration
}

// ErrNotDescending is returned by Validate for functions that increase
// somewhere on their support.
var ErrNotDescending = errors.New("budget: function must be non-increasing in t")

// ErrBadSupport is returned when Tmax is non-positive.
var ErrBadSupport = errors.New("budget: tmax must be positive")

// Validate samples f across its support and reports whether it is
// non-increasing, as §IV-C expects of user input. Sampling resolution is
// 1/1024 of the support, which exceeds the resolution of every shape this
// package constructs.
func Validate(f Func) error {
	tmax := f.Tmax()
	if tmax <= 0 {
		return ErrBadSupport
	}
	step := tmax / 1024
	if step <= 0 {
		step = 1
	}
	prev := money.Max
	for t := step; t <= tmax; t += step {
		v := f.At(t)
		if v > prev {
			return ErrNotDescending
		}
		prev = v
	}
	return nil
}

// Step is Fig. 1(a): the user pays a flat amount for any completion within
// Tmax and nothing after. This is the shape the paper's experiments use
// ("The user defines a step preference function", §VII-A).
type Step struct {
	Price money.Amount
	TMax  time.Duration
}

// NewStep constructs a step budget.
func NewStep(price money.Amount, tmax time.Duration) Step {
	return Step{Price: price, TMax: tmax}
}

// At implements Func.
func (s Step) At(t time.Duration) money.Amount {
	if t <= 0 || t > s.TMax {
		return 0
	}
	return s.Price
}

// Tmax implements Func.
func (s Step) Tmax() time.Duration { return s.TMax }

// String describes the budget.
func (s Step) String() string { return fmt.Sprintf("step(%s until %s)", s.Price, s.TMax) }

// Linear decreases linearly from Price at t→0 to zero at Tmax.
type Linear struct {
	Price money.Amount
	TMax  time.Duration
}

// NewLinear constructs a linear budget.
func NewLinear(price money.Amount, tmax time.Duration) Linear {
	return Linear{Price: price, TMax: tmax}
}

// At implements Func.
func (l Linear) At(t time.Duration) money.Amount {
	if t <= 0 || t > l.TMax || l.TMax <= 0 {
		return 0
	}
	frac := 1 - float64(t)/float64(l.TMax)
	return l.Price.MulFloat(frac)
}

// Tmax implements Func.
func (l Linear) Tmax() time.Duration { return l.TMax }

// Convex is Fig. 1(b): the budget drops steeply for small t and flattens
// near Tmax — an impatient user who pays a premium only for fast answers.
// The curve is Price·(1-t/Tmax)^k with k>1 (default 2).
type Convex struct {
	Price money.Amount
	TMax  time.Duration
	K     float64 // curvature exponent; values ≤ 1 are treated as 2
}

// NewConvex constructs a convex budget with curvature k.
func NewConvex(price money.Amount, tmax time.Duration, k float64) Convex {
	return Convex{Price: price, TMax: tmax, K: k}
}

// At implements Func.
func (c Convex) At(t time.Duration) money.Amount {
	if t <= 0 || t > c.TMax || c.TMax <= 0 {
		return 0
	}
	k := c.K
	if k <= 1 {
		k = 2
	}
	base := 1 - float64(t)/float64(c.TMax)
	return c.Price.MulFloat(pow(base, k))
}

// Tmax implements Func.
func (c Convex) Tmax() time.Duration { return c.TMax }

// Concave is Fig. 1(c): the budget stays near Price for most of the support
// and collapses close to Tmax — a patient user with a hard deadline.
// The curve is Price·(1-(t/Tmax)^k) with k>1 (default 2).
type Concave struct {
	Price money.Amount
	TMax  time.Duration
	K     float64
}

// NewConcave constructs a concave budget with curvature k.
func NewConcave(price money.Amount, tmax time.Duration, k float64) Concave {
	return Concave{Price: price, TMax: tmax, K: k}
}

// At implements Func.
func (c Concave) At(t time.Duration) money.Amount {
	if t <= 0 || t > c.TMax || c.TMax <= 0 {
		return 0
	}
	k := c.K
	if k <= 1 {
		k = 2
	}
	frac := float64(t) / float64(c.TMax)
	return c.Price.MulFloat(1 - pow(frac, k))
}

// Tmax implements Func.
func (c Concave) Tmax() time.Duration { return c.TMax }

// pow is a small positive-base power; math.Pow is avoided in the hot path
// for integral exponents, which dominate.
func pow(base, k float64) float64 {
	if base <= 0 {
		return 0
	}
	if k == 2 {
		return base * base
	}
	if k == 3 {
		return base * base * base
	}
	// General case: exp(k·ln base) via the stdlib.
	return mathPow(base, k)
}

// Point is one knot of a piecewise-linear budget.
type Point struct {
	T     time.Duration
	Price money.Amount
}

// Piecewise is a non-increasing piecewise-linear budget through a set of
// knots. Between knots the price interpolates linearly; beyond the last
// knot it is zero; before the first knot it is the first knot's price.
type Piecewise struct {
	points []Point
}

// NewPiecewise builds a piecewise budget. Knots are sorted by time; the
// resulting function must be non-increasing or an error is returned.
func NewPiecewise(points []Point) (*Piecewise, error) {
	if len(points) == 0 {
		return nil, errors.New("budget: piecewise needs at least one point")
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].T < ps[j].T })
	if ps[0].T <= 0 {
		return nil, errors.New("budget: piecewise knots must have positive t")
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].T == ps[i-1].T {
			return nil, fmt.Errorf("budget: duplicate knot at t=%s", ps[i].T)
		}
		if ps[i].Price > ps[i-1].Price {
			return nil, ErrNotDescending
		}
	}
	return &Piecewise{points: ps}, nil
}

// At implements Func.
func (p *Piecewise) At(t time.Duration) money.Amount {
	if t <= 0 || len(p.points) == 0 {
		return 0
	}
	last := p.points[len(p.points)-1]
	if t > last.T {
		return 0
	}
	if t <= p.points[0].T {
		return p.points[0].Price
	}
	// Binary search for the bracketing pair.
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].T >= t })
	lo, hi := p.points[i-1], p.points[i]
	span := float64(hi.T - lo.T)
	frac := float64(t-lo.T) / span
	return lo.Price.Add(hi.Price.Sub(lo.Price).MulFloat(frac))
}

// Tmax implements Func.
func (p *Piecewise) Tmax() time.Duration {
	if len(p.points) == 0 {
		return 0
	}
	return p.points[len(p.points)-1].T
}

// Zero is a budget function that pays nothing: a user who only accepts free
// service. It is useful as a workload degenerate case in tests.
type Zero struct{ TMax time.Duration }

// At implements Func.
func (z Zero) At(time.Duration) money.Amount { return 0 }

// Tmax implements Func.
func (z Zero) Tmax() time.Duration { return z.TMax }
