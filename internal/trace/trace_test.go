package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/workload"
)

func genQueries(t *testing.T, n int) ([]*workload.Query, []*workload.Template) {
	t.Helper()
	cat := catalog.TPCH(5)
	g, err := workload.NewGenerator(workload.Config{Catalog: cat, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	return g.Generate(n), g.Templates()
}

func TestRoundTrip(t *testing.T) {
	qs, tpls := genQueries(t, 200)
	var buf strings.Builder
	if err := Write(&buf, qs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(buf.String()), tpls)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("len = %d, want %d", len(got), len(qs))
	}
	for i := range qs {
		a, b := qs[i], got[i]
		if a.ID != b.ID || a.Template.Name != b.Template.Name {
			t.Fatalf("row %d identity differs", i)
		}
		if d := a.Arrival - b.Arrival; d < -time.Millisecond || d > time.Millisecond {
			t.Fatalf("row %d arrival %v vs %v", i, a.Arrival, b.Arrival)
		}
		rel := (a.Selectivity - b.Selectivity) / a.Selectivity
		if rel < -1e-6 || rel > 1e-6 {
			t.Fatalf("row %d selectivity %g vs %g", i, a.Selectivity, b.Selectivity)
		}
		// Step budgets preserve price and tmax.
		pa, pb := a.Budget.At(time.Millisecond), b.Budget.At(time.Millisecond)
		if pa.Sub(pb).Abs().Dollars() > 1e-6 {
			t.Fatalf("row %d budget %v vs %v", i, pa, pb)
		}
	}
}

func TestReadRejectsMalformedRows(t *testing.T) {
	_, tpls := genQueries(t, 1)
	bad := []string{
		"1,2.0,Q1",                       // too few fields
		"x,2.0,Q1,0.001,0.01,60",         // bad id
		"1,-2.0,Q1,0.001,0.01,60",        // negative arrival
		"1,2.0,NOPE,0.001,0.01,60",       // unknown template
		"1,2.0,Q1,0,0.01,60",             // zero selectivity
		"1,2.0,Q1,2,0.01,60",             // selectivity > 1
		"1,2.0,Q1,0.001,-0.01,60",        // negative budget
		"1,2.0,Q1,0.001,0.01,notanumber", // bad tmax
	}
	for _, row := range bad {
		if _, err := Read(strings.NewReader(Header+"\n"+row), tpls); err == nil {
			t.Errorf("row %q accepted", row)
		}
	}
}

func TestReadSkipsBlankLinesAndHeader(t *testing.T) {
	_, tpls := genQueries(t, 1)
	in := Header + "\n\n1,2.0,Q1,0.002,0.01,60\n\n"
	got, err := Read(strings.NewReader(in), tpls)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Template.Name != "Q1" {
		t.Fatalf("got %v", got)
	}
	// Header is only special on line 1.
	in2 := "1,2.0,Q1,0.002,0.01,60\n"
	got, err = Read(strings.NewReader(in2), tpls)
	if err != nil || len(got) != 1 {
		t.Fatalf("headerless trace rejected: %v %v", got, err)
	}
}

func TestWriteRejectsTemplatelessQuery(t *testing.T) {
	var buf strings.Builder
	if err := Write(&buf, []*workload.Query{{ID: 1}}); err == nil {
		t.Error("templateless query accepted")
	}
}

func TestReplayer(t *testing.T) {
	qs, _ := genQueries(t, 5)
	r := NewReplayer(qs)
	if r.Len() != 5 || r.Remaining() != 5 {
		t.Fatal("length accounting wrong")
	}
	for i := 0; i < 5; i++ {
		q := r.Next()
		if q == nil || q.ID != qs[i].ID {
			t.Fatalf("replay %d wrong", i)
		}
	}
	if r.Next() != nil {
		t.Error("exhausted replayer returned a query")
	}
	if r.Remaining() != 0 {
		t.Error("Remaining after exhaustion")
	}
	r.Reset()
	if r.Remaining() != 5 || r.Next().ID != qs[0].ID {
		t.Error("Reset did not rewind")
	}
}

func TestReplayFeedsSchemesIdentically(t *testing.T) {
	// Two reads of the same trace produce identical query values, so two
	// schemes compared on a replay see exactly the same stream.
	qs, tpls := genQueries(t, 100)
	var buf strings.Builder
	if err := Write(&buf, qs); err != nil {
		t.Fatal(err)
	}
	a, err := Read(strings.NewReader(buf.String()), tpls)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(strings.NewReader(buf.String()), tpls)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Selectivity != b[i].Selectivity || a[i].Arrival != b[i].Arrival {
			t.Fatalf("row %d differs between reads", i)
		}
	}
}
