// Package trace serialises query streams to CSV and replays them, so a
// workload can be generated once (or captured from elsewhere), inspected
// with ordinary tools, and fed identically to every scheme under
// comparison. cmd/workloadgen writes this format.
//
// A trace row is:
//
//	id,arrival_s,template,selectivity,budget_usd,budget_tmax_s
//
// Budgets round-trip as step functions — the shape of the paper's
// experiments; richer shapes replay as steps at their t→0 price.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/money"
	"repro/internal/workload"
)

// Header is the CSV header row.
const Header = "id,arrival_s,template,selectivity,budget_usd,budget_tmax_s"

// Write serialises queries to w.
func Write(w io.Writer, queries []*workload.Query) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, Header); err != nil {
		return err
	}
	for _, q := range queries {
		if q.Template == nil {
			return fmt.Errorf("trace: query %d has no template", q.ID)
		}
		var price money.Amount
		var tmax time.Duration
		if q.Budget != nil {
			tmax = q.Budget.Tmax()
			price = q.Budget.At(time.Millisecond)
		}
		if _, err := fmt.Fprintf(bw, "%d,%.6f,%s,%.9g,%.6f,%.3f\n",
			q.ID, q.Arrival.Seconds(), q.Template.Name, q.Selectivity,
			price.Dollars(), tmax.Seconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace, resolving template names against the given pool.
func Read(r io.Reader, templates []*workload.Template) ([]*workload.Query, error) {
	byName := make(map[string]*workload.Template, len(templates))
	for _, t := range templates {
		byName[t.Name] = t
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []*workload.Query
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.HasPrefix(text, "id,") {
			continue // header
		}
		q, err := parseRow(text, byName)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, q)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseRow decodes one CSV row.
func parseRow(text string, byName map[string]*workload.Template) (*workload.Query, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 6 {
		return nil, fmt.Errorf("want 6 fields, got %d", len(fields))
	}
	id, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad id %q", fields[0])
	}
	arrival, err := strconv.ParseFloat(fields[1], 64)
	if err != nil || arrival < 0 {
		return nil, fmt.Errorf("bad arrival %q", fields[1])
	}
	tpl, ok := byName[fields[2]]
	if !ok {
		return nil, fmt.Errorf("unknown template %q", fields[2])
	}
	sel, err := strconv.ParseFloat(fields[3], 64)
	if err != nil || sel <= 0 || sel > 1 {
		return nil, fmt.Errorf("bad selectivity %q", fields[3])
	}
	price, err := strconv.ParseFloat(fields[4], 64)
	if err != nil || price < 0 {
		return nil, fmt.Errorf("bad budget %q", fields[4])
	}
	tmaxS, err := strconv.ParseFloat(fields[5], 64)
	if err != nil || tmaxS < 0 {
		return nil, fmt.Errorf("bad tmax %q", fields[5])
	}
	return &workload.Query{
		ID:          id,
		Template:    tpl,
		Selectivity: sel,
		Arrival:     time.Duration(arrival * float64(time.Second)),
		Budget: budget.NewStep(money.FromDollars(price),
			time.Duration(tmaxS*float64(time.Second))),
	}, nil
}

// Replayer feeds a recorded trace as a workload source. It satisfies the
// same Next() contract as workload.Generator (the simulator only needs
// Next), and reports exhaustion through Remaining.
type Replayer struct {
	queries []*workload.Query
	pos     int
}

// NewReplayer wraps a parsed trace.
func NewReplayer(queries []*workload.Query) *Replayer {
	return &Replayer{queries: queries}
}

// Next returns the next query, or nil when the trace is exhausted.
func (r *Replayer) Next() *workload.Query {
	if r.pos >= len(r.queries) {
		return nil
	}
	q := r.queries[r.pos]
	r.pos++
	return q
}

// Remaining reports how many queries are left.
func (r *Replayer) Remaining() int { return len(r.queries) - r.pos }

// Len reports the full trace length.
func (r *Replayer) Len() int { return len(r.queries) }

// Reset rewinds the replayer so another scheme can see the same stream.
func (r *Replayer) Reset() { r.pos = 0 }
