// Package cloudcache reproduces "An economic model for self-tuned cloud
// caching" (Dash, Kantere, Ailamaki — ICDE 2009): a cloud cache for large
// scientific databases whose caching decisions are driven by an economy.
//
// Users attach a descending budget function B_Q(t) to each query; the cloud
// enumerates candidate plans (back-end execution, cache column scans, index
// probes, parallel variants), prices them with an all-resource cost model
// (CPU, disk I/O, disk rent, network), picks a plan within the budget,
// accumulates regret for the plans it could not run because a structure was
// missing, and invests in building columns, indexes and CPU nodes when
// regret crosses a fraction of its account. Build costs amortize over
// future queries; structures whose rent outweighs their measured value are
// evicted.
//
// The package is a facade over the internal implementation:
//
//   - NewBypass / NewEconCol / NewEconCheap / NewEconFast construct the four
//     caching schemes evaluated in the paper's §VII.
//   - NewWorkload builds the TPC-H/SDSS-like query stream generator.
//   - Run drives a scheme over a stream and reports operating cost and
//     response times (Figures 4 and 5 read directly off the Report).
//   - ReproduceFigures regenerates the paper's figures end to end.
//   - NewServer builds the concurrent online serving engine behind the
//     cmd/cloudcached daemon: live queries against sharded economies.
//
// See examples/ for runnable walkthroughs and EXPERIMENTS.md for the
// paper-versus-measured record.
package cloudcache

import (
	"time"

	"repro/internal/budget"
	"repro/internal/catalog"
	"repro/internal/economy"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/money"
	"repro/internal/plan"
	"repro/internal/pricing"
	"repro/internal/scheme"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Core re-exported types. Aliases keep the public API thin while the
// implementation lives in internal packages.
type (
	// Amount is a fixed-point monetary value (micro-dollars).
	Amount = money.Amount
	// Catalog is the relational schema of the back-end database.
	Catalog = catalog.Catalog
	// Schedule is a resource price list plus physical WAN parameters.
	Schedule = pricing.Schedule
	// BudgetFunc is a user budget function B_Q(t) (§IV-C, Fig. 1).
	BudgetFunc = budget.Func
	// Query is one request in the stream.
	Query = workload.Query
	// Template is a parameterised query shape.
	Template = workload.Template
	// Generator produces a deterministic query stream.
	Generator = workload.Generator
	// WorkloadConfig parameterises a Generator.
	WorkloadConfig = workload.Config
	// Scheme is a caching policy (bypass, econ-col, econ-cheap, econ-fast).
	Scheme = scheme.Scheme
	// SchemeParams are the tuning knobs shared by the scheme constructors.
	SchemeParams = scheme.Params
	// Report is the outcome of one simulation run.
	Report = sim.Report
	// TenantReport is one tenant's section of a simulation report.
	TenantReport = sim.TenantReport
	// Provider selects the economy's accounting stance: altruistic
	// (pooled communal account, §IV's default) or selfish (per-tenant
	// ledgers over the shared structure pool).
	Provider = economy.Provider
	// Table is a rendered result table.
	Table = metrics.Table
	// Cell is one (scheme, interval) measurement of the figure grid.
	Cell = experiments.Cell
	// Settings parameterise figure reproduction.
	Settings = experiments.Settings
	// SchemeResult reports how a scheme handled one query.
	SchemeResult = scheme.Result
	// Location says where a plan executed.
	Location = plan.Location

	// Server is the concurrent online serving engine: N economy shards
	// behind one admission front, exposed over HTTP by cmd/cloudcached.
	Server = server.Server
	// ServerConfig parameterises a Server.
	ServerConfig = server.Config
	// ServerRequest is one live query submission.
	ServerRequest = server.Request
	// ServerResponse reports how the economy answered one query.
	ServerResponse = server.Response
	// ServerBatchItem is one positional result of Server.SubmitBatch:
	// the batched admission path that amortizes mailbox and lock traffic
	// across many queries per shard hop.
	ServerBatchItem = server.BatchItem
	// ServerStats is the live metrics snapshot of GET /v1/stats.
	ServerStats = server.Stats
	// ServerTenantStats is one tenant's merged ledger view in
	// ServerStats.
	ServerTenantStats = server.TenantStats
	// ServerClock drives the serving layer's economy time.
	ServerClock = server.Clock
	// VirtualClock is the manually advanced clock for deterministic runs.
	VirtualClock = server.VirtualClock
)

// Execution locations.
const (
	// LocationBackend marks back-end execution.
	LocationBackend = plan.Backend
	// LocationCache marks in-cache execution.
	LocationCache = plan.Cache
)

// Economy providers (§IV's altruistic-vs-selfish discussion).
const (
	// ProviderAltruistic pools all tenants into one communal account.
	ProviderAltruistic = economy.ProviderAltruistic
	// ProviderSelfish accounts budgets and regret per tenant.
	ProviderSelfish = economy.ProviderSelfish
)

// ParseProvider parses a provider name ("altruistic" or "selfish").
func ParseProvider(s string) (Provider, error) { return economy.ParseProvider(s) }

// Dollars converts a float dollar value into an Amount.
func Dollars(d float64) Amount { return money.FromDollars(d) }

// TPCH returns the TPC-H catalog at the given scale factor.
func TPCH(sf float64) *Catalog { return catalog.TPCH(sf) }

// PaperCatalog returns the paper's 2.5 TB back-end catalog (§VII-A).
func PaperCatalog() *Catalog { return catalog.Paper() }

// EC2Pricing returns the Amazon EC2/S3 2008 price schedule the paper
// imports, including its calibration factors (fcpu=0.014, 25 Mbps WAN).
func EC2Pricing() *Schedule { return pricing.EC22008() }

// NetOnlyPricing returns the bypass baseline's schedule: network bandwidth
// is the only priced resource.
func NetOnlyPricing() *Schedule { return pricing.NetOnly() }

// PaperTemplates returns the seven TPC-H query templates of §VII-A.
func PaperTemplates() []*Template { return workload.PaperTemplates() }

// DefaultParams returns the scheme calibration used for the paper figures.
func DefaultParams(cat *Catalog) SchemeParams { return scheme.DefaultParams(cat) }

// NewBypass constructs the bypass-yield baseline [14]: a 30 %-of-database
// cache that loads columns by byte-yield break-even and prices only the
// network.
func NewBypass(p SchemeParams) (Scheme, error) { return scheme.NewBypass(p) }

// NewEconCol constructs the economy restricted to column structures with
// cheapest-plan selection.
func NewEconCol(p SchemeParams) (Scheme, error) { return scheme.NewEconCol(p) }

// NewEconCheap constructs the full economy (columns + indexes + CPU nodes)
// with cheapest-plan selection.
func NewEconCheap(p SchemeParams) (Scheme, error) { return scheme.NewEconCheap(p) }

// NewEconFast constructs the full economy with fastest-affordable-plan
// selection.
func NewEconFast(p SchemeParams) (Scheme, error) { return scheme.NewEconFast(p) }

// NewScheme constructs a scheme by its paper name: "bypass", "econ-col",
// "econ-cheap" or "econ-fast".
func NewScheme(name string, p SchemeParams) (Scheme, error) {
	return experiments.NewScheme(name, p)
}

// SchemeNames lists the four schemes in canonical paper order.
func SchemeNames() []string {
	out := make([]string, len(experiments.SchemeNames))
	copy(out, experiments.SchemeNames)
	return out
}

// NewWorkload builds a deterministic query-stream generator.
func NewWorkload(cfg WorkloadConfig) (*Generator, error) {
	return workload.NewGenerator(cfg)
}

// FixedArrival returns an arrival process with a constant gap, the regime
// of the paper's figures (1/10/30/60 s).
func FixedArrival(gap time.Duration) workload.ArrivalProcess {
	return workload.NewFixedArrival(gap)
}

// PoissonArrival returns a memoryless arrival process with the given mean
// gap.
func PoissonArrival(mean time.Duration) workload.ArrivalProcess {
	return workload.NewPoissonArrival(mean)
}

// StepBudget returns the §VII-A user preference: pay `price` for completion
// within tmax and nothing later.
func StepBudget(price Amount, tmax time.Duration) BudgetFunc {
	return budget.NewStep(price, tmax)
}

// LinearBudget, ConvexBudget and ConcaveBudget return the other Fig. 1
// budget shapes.
func LinearBudget(price Amount, tmax time.Duration) BudgetFunc {
	return budget.NewLinear(price, tmax)
}

// ConvexBudget returns an impatient user's budget (Fig. 1b).
func ConvexBudget(price Amount, tmax time.Duration) BudgetFunc {
	return budget.NewConvex(price, tmax, 2)
}

// ConcaveBudget returns a deadline user's budget (Fig. 1c).
func ConcaveBudget(price Amount, tmax time.Duration) BudgetFunc {
	return budget.NewConcave(price, tmax, 2)
}

// PaperBudgets returns the budget policy of the paper-figure experiments:
// step budgets sized a few times the typical back-end price.
func PaperBudgets() workload.BudgetPolicy { return experiments.PaperBudgetPolicy() }

// SimConfig parameterises Run.
type SimConfig struct {
	// Scheme under test. Required.
	Scheme Scheme
	// Workload generator. Required.
	Workload *Generator
	// Queries is the stream length. Required.
	Queries int
	// Accounting prices the true expenditure (default: EC2Pricing).
	Accounting *Schedule
}

// Run drives the scheme over the stream and reports cost and response
// statistics. Figure 4 is Report.OperatingCost; Figure 5 is
// Report.Response.Mean().
func Run(cfg SimConfig) (*Report, error) {
	return sim.Run(sim.Config{
		Scheme:     cfg.Scheme,
		Generator:  cfg.Workload,
		Queries:    cfg.Queries,
		Accounting: cfg.Accounting,
	})
}

// ReproduceFigures runs the full scheme × interval grid behind Figures 4
// and 5 and returns the cells plus both rendered tables.
func ReproduceFigures(s Settings) (cells []Cell, fig4, fig5 *Table, err error) {
	cells, err = experiments.RunGrid(s)
	if err != nil {
		return nil, nil, nil, err
	}
	return cells, experiments.Fig4Table(cells), experiments.Fig5Table(cells), nil
}

// NewServer builds and starts the online serving engine (see
// internal/server and cmd/cloudcached).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewWallClock returns a serving clock that maps real time onto economy
// time with a speedup factor (1 = real time).
func NewWallClock(speedup float64) ServerClock { return server.NewWallClock(speedup) }

// NewVirtualClock returns a manually advanced serving clock for
// deterministic tests and replays.
func NewVirtualClock() *VirtualClock { return server.NewVirtualClock() }

// PaperIntervals returns the inter-query intervals of Figures 4 and 5.
func PaperIntervals() []time.Duration {
	out := make([]time.Duration, len(experiments.PaperIntervals))
	copy(out, experiments.PaperIntervals)
	return out
}
