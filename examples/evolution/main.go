// Evolution: how the economy adapts when the workload drifts. The paper's
// viability argument (§VI) requires temporal locality but also survives its
// change — the regret ledger notices the new hot templates and invests,
// while rent-vs-yield eviction retires the structures of the old ones.
//
// This example runs econ-cheap against a stream with aggressive phase
// rotation and prints, per phase, what the cache holds and how response
// times move.
package main

import (
	"fmt"
	"log"
	"time"

	cloudcache "repro"
)

func main() {
	cat := cloudcache.TPCH(300) // reduced scale keeps this example quick
	params := cloudcache.DefaultParams(cat)
	params.RegretFraction = 0.0005 // proportionate to the reduced scale
	sch, err := cloudcache.NewEconCheap(params)
	if err != nil {
		log.Fatal(err)
	}

	const phaseLen = 5_000
	gen, err := cloudcache.NewWorkload(cloudcache.WorkloadConfig{
		Catalog:         cat,
		Seed:            3,
		Arrival:         cloudcache.FixedArrival(time.Second),
		Budgets:         cloudcache.PaperBudgets(),
		Theta:           1.4, // strong skew: a clear hot template per phase
		PhaseLength:     phaseLen,
		EvolutionStride: 3, // the hot set jumps, not drifts
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("phase  hot-template  mean-resp  cache-hit%  invests  failures  resident")
	for phase := 0; phase < 6; phase++ {
		counts := map[string]int{}
		var hits, invests, failures int
		var respSum float64
		for i := 0; i < phaseLen; i++ {
			q := gen.Next()
			counts[q.Template.Name]++
			r, err := sch.HandleQuery(q)
			if err != nil {
				log.Fatal(err)
			}
			respSum += r.ResponseTime.Seconds()
			if r.Location == cloudcache.LocationCache {
				hits++
			}
			invests += r.Investments
			failures += r.Failures
		}
		hot, hotN := "", 0
		for name, n := range counts {
			if n > hotN {
				hot, hotN = name, n
			}
		}
		fmt.Printf("%5d  %-12s  %8.2fs  %9.1f%%  %7d  %8d  %7.1fGB\n",
			phase, hot, respSum/phaseLen, 100*float64(hits)/phaseLen,
			invests, failures, float64(sch.Cache().ResidentBytes())/(1<<30))
	}

	fmt.Println("\nThe first phase pays the cold-start: everything runs in the")
	fmt.Println("back-end while regret accumulates and the first builds ship.")
	fmt.Println("Later phases reuse shared columns and adapt faster; structures")
	fmt.Println("of abandoned templates fail once their rent outweighs their")
	fmt.Println("measured value (footnote 3 / §VII-B).")
}
