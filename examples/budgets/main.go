// Budgets: the user side of the economy (§IV-C, Fig. 1). This example
// evaluates the three canonical budget shapes the paper sketches — step,
// convex and concave — and shows how the shape decides which query plan an
// altruistic cloud can offer.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	cloudcache "repro"
)

func main() {
	price := cloudcache.Dollars(0.05)
	tmax := 20 * time.Second

	shapes := []struct {
		name string
		fn   cloudcache.BudgetFunc
		note string
	}{
		{"step", cloudcache.StepBudget(price, tmax), "Fig. 1(a): flat until the deadline — the paper's experiments"},
		{"linear", cloudcache.LinearBudget(price, tmax), "reference chord between the two curved shapes"},
		{"convex", cloudcache.ConvexBudget(price, tmax), "Fig. 1(b): impatient — premium only for fast answers"},
		{"concave", cloudcache.ConcaveBudget(price, tmax), "Fig. 1(c): deadline user — full price until close to tmax"},
	}

	// Render each budget as a row of values over the support.
	fmt.Printf("budget value by promised execution time (price %s, tmax %s)\n\n", price, tmax)
	fmt.Printf("%-8s", "t")
	for t := 2 * time.Second; t <= tmax; t += 2 * time.Second {
		fmt.Printf("%8.0fs", t.Seconds())
	}
	fmt.Println()
	for _, s := range shapes {
		fmt.Printf("%-8s", s.name)
		for t := 2 * time.Second; t <= tmax; t += 2 * time.Second {
			fmt.Printf("%9s", s.fn.At(t))
		}
		fmt.Printf("   %s\n", s.note)
	}

	// The shape decides what the cloud can offer. Simulate two plans:
	// a fast expensive one and a slow cheap one, and see which budgets
	// afford which (the case analysis of §IV-C).
	fmt.Println("\nplan affordability (case analysis of §IV-C):")
	plans := []struct {
		name  string
		t     time.Duration
		price cloudcache.Amount
	}{
		{"fast-index-plan", 3 * time.Second, cloudcache.Dollars(0.04)},
		{"slow-backend-plan", 16 * time.Second, cloudcache.Dollars(0.012)},
	}
	for _, s := range shapes {
		var afford []string
		for _, p := range plans {
			if s.fn.At(p.t) >= p.price {
				afford = append(afford, p.name)
			}
		}
		caseLabel := "C (some plans)"
		switch len(afford) {
		case 0:
			caseLabel = "A (nothing affordable)"
		case len(plans):
			caseLabel = "B (everything affordable)"
		}
		fmt.Printf("  %-8s case %-24s affords: %s\n", s.name, caseLabel, strings.Join(afford, ", "))
	}

	// Custom piecewise budgets compose the shapes.
	fmt.Println("\na custom piecewise budget validates as long as it is non-increasing:")
	custom, err := cloudcache.NewWorkload(cloudcache.WorkloadConfig{
		Catalog: cloudcache.TPCH(1),
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	q := custom.Next()
	fmt.Printf("  generated %s carries a %T budget paying %s within %s\n",
		q.Template.Name, q.Budget, q.Budget.At(time.Second), q.Budget.Tmax())
}
