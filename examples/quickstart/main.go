// Quickstart: build the paper's cloud cache, feed it a short SDSS-like
// query stream, and read off the two numbers the evaluation reports —
// operating cost (Fig. 4) and mean response time (Fig. 5).
package main

import (
	"fmt"
	"log"
	"time"

	cloudcache "repro"
)

func main() {
	// The back-end: a 2.5 TB TPC-H catalog, as in §VII-A. (Use
	// cloudcache.TPCH(sf) for smaller scales.)
	cat := cloudcache.PaperCatalog()
	fmt.Printf("back-end database: %.2f TB across %d tables\n",
		float64(cat.TotalBytes())/1e12, len(cat.Tables()))

	// The scheme under test: the full economy with cheapest-plan
	// selection (econ-cheap). DefaultParams carries the paper's
	// calibration: EC2 2008 prices, 25 Mbps WAN, Eq. 3 regret trigger.
	sch, err := cloudcache.NewEconCheap(cloudcache.DefaultParams(cat))
	if err != nil {
		log.Fatal(err)
	}

	// The workload: the seven TPC-H templates with Zipfian popularity,
	// one query per second, step budgets a few times the back-end price.
	gen, err := cloudcache.NewWorkload(cloudcache.WorkloadConfig{
		Catalog: cat,
		Seed:    1,
		Arrival: cloudcache.FixedArrival(time.Second),
		Budgets: cloudcache.PaperBudgets(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run 50 000 queries (the paper simulates a million).
	rep, err := cloudcache.Run(cloudcache.SimConfig{
		Scheme:   sch,
		Workload: gen,
		Queries:  50_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("operating cost (Fig. 4): %s\n", rep.OperatingCost)
	fmt.Printf("  execution %s, builds %s, storage %s, nodes %s\n",
		rep.ExecCost, rep.BuildCost, rep.StorageCost, rep.NodeCost)
	fmt.Printf("mean response (Fig. 5): %.2fs (p95 %.2fs)\n",
		rep.Response.Mean(), rep.Response.Percentile(95))
	fmt.Printf("cache answered %d of %d queries; %d structures built\n",
		rep.CacheAnswered, rep.Queries, rep.Investments)
	fmt.Printf("revenue %s, cloud profit %s\n", rep.Revenue, rep.Profit)
}
