// Pricing: the cost model is the economy's sensor. This example compares
// the four schemes under the stock EC2-2008 schedule and under a
// "disk-is-expensive" variant, showing how the economy re-balances its
// structure mix when one resource's relative price changes — the paper's
// central claim that "a comprehensive economic model that considers costs
// for all resources performs better than a model that considers only one
// resource" (§VII-B).
package main

import (
	"fmt"
	"log"
	"time"

	cloudcache "repro"
)

func main() {
	cat := cloudcache.TPCH(300)
	const queries = 15_000

	run := func(name string, sched *cloudcache.Schedule) {
		fmt.Printf("\n--- %s (%s) ---\n", name, sched)
		fmt.Printf("%-11s %-12s %-10s %-10s %-9s %s\n",
			"scheme", "cost", "resp", "hits", "builds", "resident")
		for _, sn := range cloudcache.SchemeNames() {
			params := cloudcache.DefaultParams(cat)
			params.Schedule = sched
			params.RegretFraction = 0.0005 // proportionate to the reduced scale
			sch, err := cloudcache.NewScheme(sn, params)
			if err != nil {
				log.Fatal(err)
			}
			gen, err := cloudcache.NewWorkload(cloudcache.WorkloadConfig{
				Catalog: cat,
				Seed:    9,
				Arrival: cloudcache.FixedArrival(2 * time.Second),
				Budgets: cloudcache.PaperBudgets(),
			})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := cloudcache.Run(cloudcache.SimConfig{
				Scheme:     sch,
				Workload:   gen,
				Queries:    queries,
				Accounting: sched,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-11s %-12s %8.2fs %9d %9d %7.1fGB\n",
				sn, rep.OperatingCost, rep.Response.Mean(),
				rep.CacheAnswered, rep.Investments,
				float64(rep.FinalResidentBytes)/(1<<30))
		}
	}

	// Stock 2008 Amazon prices: $0.10/CPU-h, $0.15/GB-month disk,
	// $0.10/GB network, $0.10/M I/O.
	run("EC2 2008", cloudcache.EC2Pricing())

	// Disk 20x dearer: rent-vs-yield eviction bites much earlier, so the
	// economy holds a smaller resident set and re-balances toward the
	// back-end; bypass, which prices only the network, does not react at
	// all — its behaviour is identical under both schedules.
	dear := cloudcache.EC2Pricing()
	dear.DiskPerGBMonth = dear.DiskPerGBMonth.MulInt(20)
	run("disk 20x dearer", dear)

	fmt.Println("\nUnder dear disk the economy schemes shed structures (compare")
	fmt.Println("the resident columns) and trade some response time for rent,")
	fmt.Println("while bypass is blind to the price change: identical hits and")
	fmt.Println("residency under both schedules. The all-resource model is what")
	fmt.Println("lets the cloud 'exploit the cheaper resource in order to save")
	fmt.Println("on the more expensive ones' (§VII-B).")
}
