package cloudcache

// The benchmark harness regenerates every figure of the paper's evaluation
// (§VII) as testing.B benchmarks. Figures 4 and 5 come from the same
// simulation grid — Figure 4 reads operating cost, Figure 5 mean response —
// so each Fig4/Fig5 benchmark runs one (scheme, interval) cell and reports
// both values as custom metrics:
//
//	cost-$        total operating cost of the run (Fig. 4 bar)
//	resp-sec      mean response time in seconds (Fig. 5 bar)
//
// Benchmarks run on a reduced stream (benchQueries) so `go test -bench .`
// completes in minutes; `cmd/figures` regenerates the full-scale tables.
// The ablation benchmarks cover the design choices DESIGN.md calls out.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
)

// benchQueries keeps one grid cell to roughly a second of wall time.
const benchQueries = 40_000

// benchSettings is the shared figure-grid configuration.
func benchSettings() Settings {
	return Settings{
		Queries: benchQueries,
		Seed:    42,
	}
}

// runCellBench runs one figure cell per benchmark iteration and reports the
// Fig. 4 / Fig. 5 values as custom metrics.
func runCellBench(b *testing.B, scheme string, interval time.Duration) {
	b.Helper()
	b.ReportAllocs()
	var lastCost, lastResp float64
	for i := 0; i < b.N; i++ {
		cell, err := experiments.RunCell(benchSettings(), scheme, interval)
		if err != nil {
			b.Fatal(err)
		}
		lastCost = cell.Cost().Dollars()
		lastResp = cell.MeanResponseSeconds()
	}
	b.ReportMetric(lastCost, "cost-$")
	b.ReportMetric(lastResp, "resp-sec")
	b.ReportMetric(float64(benchQueries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// --- Figure 4 + Figure 5: the scheme × interval grid ---------------------

func BenchmarkFig4Fig5(b *testing.B) {
	for _, interval := range []time.Duration{time.Second, 10 * time.Second, 30 * time.Second, 60 * time.Second} {
		for _, scheme := range experiments.SchemeNames {
			b.Run(fmt.Sprintf("%s/interval=%ds", scheme, int(interval.Seconds())), func(b *testing.B) {
				runCellBench(b, scheme, interval)
			})
		}
	}
}

// --- Parallel grid engine -------------------------------------------------

// gridBenchQueries keeps one full 16-cell grid to a few seconds of wall
// time per iteration.
const gridBenchQueries = 5_000

// BenchmarkGridWorkers measures the worker-pool grid engine at several
// worker counts; combine with -cpu to sweep GOMAXPROCS too. Each run
// reports the worker count, grid throughput in queries/s, allocation
// counts, and the wall-clock speedup over the same grid at Workers: 1 —
// the perf trajectory future PRs compare against. Cell results are
// byte-identical at every worker count, so the speedup is pure dispatch.
func BenchmarkGridWorkers(b *testing.B) {
	gridSettings := func(workers int) Settings {
		return Settings{Queries: gridBenchQueries, Seed: 42, Workers: workers}
	}
	cellCount := len(experiments.SchemeNames) * len(experiments.PaperIntervals)

	// The workers=1 sub-benchmark runs first and its averaged per-op time
	// is the speedup baseline, so speedup-x is warm-vs-warm (and reads
	// exactly 1.0 at workers=1).
	var baseline time.Duration
	seen := map[int]bool{}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunGrid(gridSettings(workers)); err != nil {
					b.Fatal(err)
				}
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			if workers == 1 {
				baseline = perOp
			}
			b.ReportMetric(float64(workers), "workers")
			b.ReportMetric(float64(gridBenchQueries*cellCount)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			if baseline > 0 {
				b.ReportMetric(baseline.Seconds()/perOp.Seconds(), "speedup-x")
			}
		})
	}
}

// --- Ablation A: regret fraction a (Eq. 3) -------------------------------

func BenchmarkAblationRegretFraction(b *testing.B) {
	for _, a := range []float64{0.001, 0.005, 0.05} {
		b.Run(fmt.Sprintf("a=%g", a), func(b *testing.B) {
			var lastCost, lastResp float64
			for i := 0; i < b.N; i++ {
				s := benchSettings()
				s.Params.RegretFraction = a
				cell, err := experiments.RunCell(s, "econ-cheap", time.Second)
				if err != nil {
					b.Fatal(err)
				}
				lastCost = cell.Cost().Dollars()
				lastResp = cell.MeanResponseSeconds()
			}
			b.ReportMetric(lastCost, "cost-$")
			b.ReportMetric(lastResp, "resp-sec")
		})
	}
}

// --- Ablation B: budget shapes (Fig. 1) ----------------------------------

func BenchmarkAblationBudgetShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationBudgetShape(benchSettings(), time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation C: network throughput --------------------------------------

func BenchmarkAblationNetworkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationNetworkThroughput(benchSettings(), []float64{5, 25, 100}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation D: bypass cache fraction (30 % ideal, [14]) ----------------

func BenchmarkAblationCacheFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationCacheFraction(benchSettings(), []float64{0.15, 0.30, 0.45}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation E: amortization horizon n (Eq. 7, the paper's open problem) -

func BenchmarkAblationAmortization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationAmortization(benchSettings(), []int64{10_000, 100_000}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks on the per-query hot path ----------------------------

// BenchmarkQueryPipeline measures the end-to-end cost of handling one query
// through the full economy (enumeration + selection + settlement + regret).
func BenchmarkQueryPipeline(b *testing.B) {
	cat := PaperCatalog()
	s, err := NewEconCheap(DefaultParams(cat))
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewWorkload(WorkloadConfig{
		Catalog: cat,
		Seed:    1,
		Arrival: FixedArrival(time.Second),
		Budgets: PaperBudgets(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.HandleQuery(gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures query-stream generation alone.
func BenchmarkWorkloadGeneration(b *testing.B) {
	gen, err := NewWorkload(WorkloadConfig{
		Catalog: PaperCatalog(),
		Seed:    1,
		Arrival: FixedArrival(time.Second),
		Budgets: PaperBudgets(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Next()
	}
}

// BenchmarkBudgetEval measures a budget-function evaluation.
func BenchmarkBudgetEval(b *testing.B) {
	f := ConcaveBudget(Dollars(0.01), 60*time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.At(time.Duration(i%60) * time.Second)
	}
}
