package cloudcache

// The benchmark harness regenerates every figure of the paper's evaluation
// (§VII) as testing.B benchmarks. Figures 4 and 5 come from the same
// simulation grid — Figure 4 reads operating cost, Figure 5 mean response —
// so each Fig4/Fig5 benchmark runs one (scheme, interval) cell and reports
// both values as custom metrics:
//
//	cost-$        total operating cost of the run (Fig. 4 bar)
//	resp-sec      mean response time in seconds (Fig. 5 bar)
//
// Benchmarks run on a reduced stream (benchQueries) so `go test -bench .`
// completes in minutes; `cmd/figures` regenerates the full-scale tables.
// The ablation benchmarks cover the design choices DESIGN.md calls out.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/bits"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/router"
	"repro/internal/server/wire"
)

// benchQueries keeps one grid cell to roughly a second of wall time.
const benchQueries = 40_000

// benchSettings is the shared figure-grid configuration.
func benchSettings() Settings {
	return Settings{
		Queries: benchQueries,
		Seed:    42,
	}
}

// runCellBench runs one figure cell per benchmark iteration and reports the
// Fig. 4 / Fig. 5 values as custom metrics.
func runCellBench(b *testing.B, scheme string, interval time.Duration) {
	b.Helper()
	b.ReportAllocs()
	var lastCost, lastResp float64
	for i := 0; i < b.N; i++ {
		cell, err := experiments.RunCell(benchSettings(), scheme, interval)
		if err != nil {
			b.Fatal(err)
		}
		lastCost = cell.Cost().Dollars()
		lastResp = cell.MeanResponseSeconds()
	}
	b.ReportMetric(lastCost, "cost-$")
	b.ReportMetric(lastResp, "resp-sec")
	b.ReportMetric(float64(benchQueries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// --- Figure 4 + Figure 5: the scheme × interval grid ---------------------

func BenchmarkFig4Fig5(b *testing.B) {
	for _, interval := range []time.Duration{time.Second, 10 * time.Second, 30 * time.Second, 60 * time.Second} {
		for _, scheme := range experiments.SchemeNames {
			b.Run(fmt.Sprintf("%s/interval=%ds", scheme, int(interval.Seconds())), func(b *testing.B) {
				runCellBench(b, scheme, interval)
			})
		}
	}
}

// --- Parallel grid engine -------------------------------------------------

// gridBenchQueries keeps one full 16-cell grid to a few seconds of wall
// time per iteration.
const gridBenchQueries = 5_000

// BenchmarkGridWorkers measures the worker-pool grid engine at several
// worker counts; combine with -cpu to sweep GOMAXPROCS too. Each run
// reports the worker count, grid throughput in queries/s, allocation
// counts, and the wall-clock speedup over the same grid at Workers: 1 —
// the perf trajectory future PRs compare against. Cell results are
// byte-identical at every worker count, so the speedup is pure dispatch.
func BenchmarkGridWorkers(b *testing.B) {
	gridSettings := func(workers int) Settings {
		return Settings{Queries: gridBenchQueries, Seed: 42, Workers: workers}
	}
	cellCount := len(experiments.SchemeNames) * len(experiments.PaperIntervals)

	// The workers=1 sub-benchmark runs first and its averaged per-op time
	// is the speedup baseline, so speedup-x is warm-vs-warm (and reads
	// exactly 1.0 at workers=1).
	var baseline time.Duration
	seen := map[int]bool{}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunGrid(gridSettings(workers)); err != nil {
					b.Fatal(err)
				}
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			if workers == 1 {
				baseline = perOp
			}
			b.ReportMetric(float64(workers), "workers")
			b.ReportMetric(float64(gridBenchQueries*cellCount)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			if baseline > 0 {
				b.ReportMetric(baseline.Seconds()/perOp.Seconds(), "speedup-x")
			}
		})
	}
}

// --- Online serving layer -------------------------------------------------

// serverBenchCell is one row of the machine-readable perf trajectory.
// Mode distinguishes the admission path: "inproc" submits single queries
// in-process with the shard loops' group commit disabled (the historical
// one-message-per-wakeup baseline), "microbatch" is the same singleton
// Submit load with group commit on (the shard drains its whole mailbox
// into one lock acquisition per wakeup), "batch" uses SubmitBatch, "http"
// goes through the JSON API over a real socket, "bin" through the
// length-prefixed binary protocol with one lockstep connection per
// submitter, "lockstep" shares ONE v1 connection between all submitters
// behind a mutex (one outstanding batch — the round-trip-bound baseline
// the multiplexed protocol exists to beat), "pipelined" shares ONE
// v2 MuxClient between all submitters with their batches tagged and in
// flight concurrently, and "routed" is the same pipelined load through
// a cloudrouter front: client -> router (fan-out by shard) -> backend,
// pricing the cluster tier's extra hop against "pipelined" direct.
// AllocsPerQuery is normalized per query (not per benchmark op, which is
// a whole batch in the batched modes) so cells compare across modes; the
// key is renamed from the pre-batching allocs_per_op so old and new
// trajectories cannot be silently conflated. GoMaxProcs records the
// scheduler width the cell ran at, for the multi-core sweep rows.
type serverBenchCell struct {
	Mode   string `json:"mode"`
	Shards int    `json:"shards"`
	Batch  int    `json:"batch"`
	// Trace distinguishes the tracing-overhead cells: "" is the default
	// row (no tracer at all — the pre-observability baseline), "off" has
	// the tracer installed with sampling disabled (the atomic-gate cost),
	// "1/64" samples one query in 64. scripts/checkbench gates "off"
	// against "" at 5%.
	Trace         string  `json:"trace,omitempty"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	SimRTTMs      float64 `json:"sim_rtt_ms,omitempty"`
	Queries       int64   `json:"queries"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	// P50Sec/P99Sec are the economy's promised response times on the
	// virtual clock; WallP50Ms/WallP99Ms are measured wall-clock service
	// latencies of one submission op (a whole batch in the batched and
	// binary modes), pricing the serving stack rather than the economy.
	P50Sec         float64 `json:"p50_s"`
	P99Sec         float64 `json:"p99_s"`
	WallP50Ms      float64 `json:"wall_p50_ms"`
	WallP99Ms      float64 `json:"wall_p99_ms"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
}

// serverBenchFile is the BENCH_server.json schema future PRs diff against.
type serverBenchFile struct {
	Benchmark  string            `json:"benchmark"`
	Scheme     string            `json:"scheme"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Cells      []serverBenchCell `json:"cells"`
}

// simRTT is the round-trip time simulated on the shared-socket protocol
// rows ("lockstep" and "pipelined"): a conservative same-zone cloud
// RTT. Loopback has essentially none, and without one the lockstep
// protocol's deficiency is invisible — the blocked client donates its
// core to the server, so one-outstanding-batch costs nothing. The delay
// is injected on reply delivery only (requests travel instantly), which
// is equivalent for both protocols, and the affected cells record it in
// sim_rtt_ms so they are never mistaken for raw-loopback rows. The
// nominal value is a floor: sleep granularity stretches the realized
// RTT (to ~1.4 ms on the reference container), identically for both
// modes, so the lockstep/pipelined ratio is unaffected.
const simRTT = 500 * time.Microsecond

// latConn wraps a connection so inbound bytes become visible `delay`
// after they actually arrived — a one-way network delay on top of an
// otherwise zero-latency loopback socket. Bandwidth is not modeled.
type latConn struct {
	net.Conn
	pr *io.PipeReader
}

func newLatConn(c net.Conn, delay time.Duration) net.Conn {
	pr, pw := io.Pipe()
	type chunk struct {
		due time.Time
		b   []byte
	}
	ch := make(chan chunk, 1024)
	go func() {
		defer pw.Close()
		for ck := range ch {
			if d := time.Until(ck.due); d > 0 {
				time.Sleep(d)
			}
			if _, err := pw.Write(ck.b); err != nil {
				// Reader gone: keep draining so the read loop can exit.
				for range ch {
				}
				return
			}
		}
	}()
	go func() {
		defer close(ch)
		buf := make([]byte, 64<<10)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				b := make([]byte, n)
				copy(b, buf[:n])
				ch <- chunk{due: time.Now().Add(delay), b: b}
			}
			if err != nil {
				return
			}
		}
	}()
	return &latConn{Conn: c, pr: pr}
}

func (l *latConn) Read(p []byte) (int, error) { return l.pr.Read(p) }

func (l *latConn) Close() error {
	l.pr.Close()
	return l.Conn.Close()
}

// benchTemplates lists the paper template names once for all modes.
func benchTemplates() []string {
	templates := make([]string, 0, 7)
	for _, t := range PaperTemplates() {
		templates = append(templates, t.Name)
	}
	return templates
}

// benchTenants precomputes the tenant names the submitters cycle through
// so the measured loops never pay fmt.Sprintf — client-side formatting
// allocations would otherwise dominate the per-query alloc counts the
// trajectory gates on.
var benchTenants = func() [64]string {
	var t [64]string
	for i := range t {
		t[i] = fmt.Sprintf("tenant-%02d", i)
	}
	return t
}()

// latSub is the sub-bucket resolution of latHist: each power-of-two
// decade splits into 2^latSub buckets (~6% value resolution).
const latSub = 4

// latHist is a fixed-size log-scale histogram of wall-clock submission
// latencies: concurrent submitters record without locks or allocation,
// and the cell reports its p50/p99. The virtual-clock p50_s/p99_s
// columns price the economy's promised response times; these wall
// numbers price the serving stack itself.
type latHist struct {
	buckets [64 << latSub]atomic.Int64
}

func (h *latHist) record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	exp := uint(bits.Len64(ns) - 1)
	var sub uint64
	if exp > latSub {
		sub = (ns >> (exp - latSub)) & (1<<latSub - 1)
	} else {
		sub = ns & (1<<latSub - 1)
	}
	h.buckets[exp<<latSub|uint(sub)].Add(1)
}

// quantile returns the q-quantile (0 < q <= 1) as the midpoint of the
// bucket the target rank lands in.
func (h *latHist) quantile(q float64) time.Duration {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			exp := uint(i) >> latSub
			sub := uint64(i) & (1<<latSub - 1)
			lo := uint64(1) << exp
			width := uint64(1)
			if exp > latSub {
				lo |= sub << (exp - latSub)
				width = uint64(1) << (exp - latSub)
			} else {
				lo |= sub
			}
			return time.Duration(lo + width/2)
		}
	}
	return 0
}

// runServerThroughput drives one (mode, shards, batch, procs) cell:
// concurrent submitters spread across tenants push queries through the
// chosen admission path, and the server's own counters price the
// result. One b.N iteration is one submission — `batch` queries in the
// batched and binary modes — so queries/s, not ns/op, is the comparable
// number. procs > 0 pins GOMAXPROCS for the cell (the multi-core sweep
// rows); 0 keeps the process default.
func runServerThroughput(b *testing.B, out *serverBenchFile, mode string, shards, batch, procs int, trace string) {
	b.Helper()
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	templates := benchTemplates()
	cat := PaperCatalog()
	cfg := ServerConfig{
		Shards:  shards,
		Scheme:  out.Scheme,
		Params:  DefaultParams(cat),
		Clock:   NewWallClock(60),
		Budgets: PaperBudgets(),
		// "inproc" preserves the pre-group-commit baseline so the
		// "microbatch" row isolates the server-side micro-batching gain
		// on the identical singleton-Submit load.
		DisableMicroBatch: mode == "inproc",
		// Default rows run without a tracer so the trajectory stays
		// comparable with the pre-observability baseline; the trace cells
		// measure what installing one costs.
		TraceRing: -1,
	}
	switch trace {
	case "":
	// "none" is the trace group's own no-tracer baseline: same config
	// as "", but a distinct cell key, so checkbench compares samples
	// taken in the same (adjacent, warm) window of the sweep rather
	// than letting a default row from the sweep's early phase stand in.
	case "none":
	case "off":
		cfg.TraceRing = 0 // tracer installed, sampling disabled
	case "1/64":
		cfg.TraceRing = 0
		cfg.TraceSampleEvery = 64
	case "all":
		cfg.TraceRing = 0
		cfg.TraceSampleEvery = 1
	default:
		b.Fatalf("unknown trace cell %q", trace)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	// The network modes serve over a real loopback socket so the cell
	// pays genuine syscall, framing and (for http) JSON costs.
	var baseURL, binAddr string
	switch mode {
	case "http":
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		baseURL = ts.URL
	case "bin", "lockstep", "pipelined":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		go wire.Serve(ln, srv)
		binAddr = ln.Addr().String()
	case "routed":
		// Backend and router on loopback; the simulated client RTT is
		// paid on the client->router socket only, like "pipelined" pays
		// it client->server, so the delta between the two cells is the
		// router hop itself.
		backendLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer backendLn.Close()
		go wire.Serve(backendLn, srv)
		rt, err := router.New(router.Config{
			Backends:       []router.BackendConfig{{Addr: backendLn.Addr().String()}},
			HealthInterval: -1,
			Log:            slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer rt.Close()
		routerLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer routerLn.Close()
		go wire.ServeEngine(routerLn, rt)
		binAddr = routerLn.Addr().String()
	}

	// The shared-connection modes dial exactly once: "lockstep" is the
	// one-outstanding-batch baseline (every submitter queues on the same
	// mutex and waits its round trip out), "pipelined" multiplexes all
	// submitters' tagged batches over the same socket concurrently.
	var (
		lockstepMu sync.Mutex
		lockstepCl *wire.Client
		muxCl      *wire.MuxClient
	)
	switch mode {
	case "lockstep", "pipelined", "routed":
		raw, err := net.Dial("tcp", binAddr)
		if err != nil {
			b.Fatal(err)
		}
		conn := newLatConn(raw, simRTT)
		if mode == "lockstep" {
			cl := wire.NewClient(conn)
			defer cl.Close()
			lockstepCl = cl
		} else {
			cl, err := wire.NewMuxClient(conn)
			if err != nil {
				conn.Close()
				b.Fatal(err)
			}
			defer cl.Close()
			muxCl = cl
		}
	}

	// benchQueryAt shapes query i identically for every mode — the
	// cross-mode comparison only holds if all paths draw the same
	// tenant/template stream.
	benchQueryAt := func(i int64) (tenant, template string) {
		return benchTenants[i%64], templates[i%int64(len(templates))]
	}
	makeRequests := func(from int64) []ServerRequest {
		reqs := make([]ServerRequest, batch)
		for j := range reqs {
			tenant, template := benchQueryAt(from + int64(j))
			reqs[j] = ServerRequest{Tenant: tenant, Template: template}
		}
		return reqs
	}

	// Every submission path blocks on replies (a singleton Submit on its
	// shard's decision, a batch on its slowest shard group, a network
	// client on its socket round trip), so oversubscribe the submitters
	// to keep every shard loop busy — like a real daemon with more
	// connections than cores. This includes "inproc": the micro-batching
	// comparison only means something if queues actually form, and a
	// single submitter per core never leaves more than one message in a
	// mailbox. "pipelined" goes much wider — its whole point is many
	// batches in flight on one socket, and the submitter count is the
	// in-flight window: wide enough that the simulated RTT stops being
	// the bottleneck and the engine is again.
	if mode == "pipelined" || mode == "routed" {
		b.SetParallelism(64)
	} else {
		b.SetParallelism(4)
	}

	b.ReportAllocs()
	var idx atomic.Int64
	var lat latHist
	// Warm the shared-client modes before the timer: at -benchtime
	// 1000x the measured window is tens of milliseconds, so connection
	// establishment, the router's dispatcher spin-up and socket buffer
	// growth would otherwise be a mode-dependent fraction of the
	// measurement (and the 15% routed gate compares exactly these two
	// modes). The warm-up stream advances idx, so the measured window
	// continues the same query sequence.
	if mode == "pipelined" || mode == "routed" {
		var warm sync.WaitGroup
		for w := 0; w < 16; w++ {
			warm.Add(1)
			go func() {
				defer warm.Done()
				ctx := context.Background()
				qs := make([]wire.Query, batch)
				for it := 0; it < 4; it++ {
					from := idx.Add(int64(batch)) - int64(batch)
					for j := range qs {
						tenant, template := benchQueryAt(from + int64(j))
						qs[j] = wire.Query{Tenant: tenant, Template: template}
					}
					if _, err := muxCl.Submit(ctx, qs); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		warm.Wait()
	}
	// The in-process modes warm the economy before the timer for the
	// same reason: the first few hundred queries per shard are
	// investment-heavy (structure builds, ledger and cache map growth),
	// and at -benchtime 1000x that cold phase would otherwise dominate a
	// window meant to record steady-state serving. ~512 queries per
	// shard builds out the working set (each shard warms its own cache
	// from its own slice of the tenant stream, so the warm-up scales
	// with the shard count). The network fronts skip this — their
	// measured loops run orders of magnitude more queries per
	// connection cost, and the lockstep cell would spend seconds of
	// simulated RTT warming up.
	switch mode {
	case "inproc", "microbatch", "batch":
		ops := (shards*64 + batch - 1) / batch
		var warm sync.WaitGroup
		for w := 0; w < 8; w++ {
			warm.Add(1)
			go func() {
				defer warm.Done()
				ctx := context.Background()
				for it := 0; it < ops; it++ {
					from := idx.Add(int64(batch)) - int64(batch)
					if batch > 1 {
						if _, err := srv.SubmitBatch(ctx, makeRequests(from)); err != nil {
							b.Error(err)
							return
						}
					} else {
						tenant, template := benchQueryAt(from)
						if _, err := srv.Submit(ctx, ServerRequest{Tenant: tenant, Template: template}); err != nil {
							b.Error(err)
							return
						}
					}
				}
			}()
		}
		warm.Wait()
	}
	// Measure from here: warm-up queries are excluded from the
	// throughput window, the allocation count and the latency
	// histogram alike.
	q0 := srv.Stats().Queries
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		switch mode {
		case "inproc", "microbatch":
			for pb.Next() {
				tenant, template := benchQueryAt(idx.Add(1))
				t0 := time.Now()
				_, err := srv.Submit(ctx, ServerRequest{Tenant: tenant, Template: template})
				lat.record(time.Since(t0))
				if err != nil {
					b.Error(err)
					return
				}
			}
		case "batch":
			for pb.Next() {
				from := idx.Add(int64(batch)) - int64(batch)
				reqs := makeRequests(from)
				t0 := time.Now()
				items, err := srv.SubmitBatch(ctx, reqs)
				lat.record(time.Since(t0))
				if err != nil {
					b.Error(err)
					return
				}
				for k := range items {
					if items[k].Err != nil {
						b.Error(items[k].Err)
						return
					}
				}
			}
		case "http":
			client := &http.Client{}
			for pb.Next() {
				tenant, template := benchQueryAt(idx.Add(1))
				body := fmt.Sprintf(`{"tenant":"%s","template":"%s"}`, tenant, template)
				t0 := time.Now()
				resp, err := client.Post(baseURL+"/v1/query", "application/json", strings.NewReader(body))
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat.record(time.Since(t0))
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		case "bin":
			cl, err := wire.Dial(binAddr)
			if err != nil {
				b.Error(err)
				return
			}
			defer cl.Close()
			qs := make([]wire.Query, batch)
			for pb.Next() {
				from := idx.Add(int64(batch)) - int64(batch)
				for j := range qs {
					tenant, template := benchQueryAt(from + int64(j))
					qs[j] = wire.Query{Tenant: tenant, Template: template}
				}
				t0 := time.Now()
				replies, err := cl.Submit(qs)
				lat.record(time.Since(t0))
				if err != nil {
					b.Error(err)
					return
				}
				for k := range replies {
					if replies[k].Err != "" {
						b.Errorf("reply error: %s", replies[k].Err)
						return
					}
				}
			}
		case "lockstep":
			for pb.Next() {
				from := idx.Add(int64(batch)) - int64(batch)
				lockstepMu.Lock()
				qs := make([]wire.Query, batch)
				for j := range qs {
					tenant, template := benchQueryAt(from + int64(j))
					qs[j] = wire.Query{Tenant: tenant, Template: template}
				}
				t0 := time.Now()
				replies, err := lockstepCl.Submit(qs)
				lat.record(time.Since(t0))
				if err == nil {
					for k := range replies {
						if replies[k].Err != "" {
							err = fmt.Errorf("reply error: %s", replies[k].Err)
							break
						}
					}
				}
				lockstepMu.Unlock()
				if err != nil {
					b.Error(err)
					return
				}
			}
		case "pipelined", "routed":
			qs := make([]wire.Query, batch)
			for pb.Next() {
				from := idx.Add(int64(batch)) - int64(batch)
				for j := range qs {
					tenant, template := benchQueryAt(from + int64(j))
					qs[j] = wire.Query{Tenant: tenant, Template: template}
				}
				t0 := time.Now()
				replies, err := muxCl.Submit(ctx, qs)
				lat.record(time.Since(t0))
				if err != nil {
					b.Error(err)
					return
				}
				for k := range replies {
					if replies[k].Err != "" {
						b.Errorf("reply error: %s", replies[k].Err)
						return
					}
				}
			}
		default:
			b.Errorf("unknown mode %q", mode)
		}
	})
	b.StopTimer()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	st := srv.Stats()
	measured := st.Queries - q0
	qps := float64(measured) / elapsed.Seconds()
	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(measured)
	wallP50 := lat.quantile(0.50)
	wallP99 := lat.quantile(0.99)
	b.ReportMetric(float64(shards), "shards")
	b.ReportMetric(qps, "queries/s")
	b.ReportMetric(st.ResponseP50Sec, "p50-sec")
	b.ReportMetric(st.ResponseP99Sec, "p99-sec")
	b.ReportMetric(wallP50.Seconds()*1e3, "wall-p50-ms")
	b.ReportMetric(wallP99.Seconds()*1e3, "wall-p99-ms")
	var rttMs float64
	if mode == "lockstep" || mode == "pipelined" || mode == "routed" {
		rttMs = simRTT.Seconds() * 1e3
	}
	cell := serverBenchCell{
		Mode:           mode,
		Shards:         shards,
		Batch:          batch,
		Trace:          trace,
		GoMaxProcs:     procs,
		SimRTTMs:       rttMs,
		Queries:        measured,
		QueriesPerSec:  qps,
		P50Sec:         st.ResponseP50Sec,
		P99Sec:         st.ResponseP99Sec,
		WallP50Ms:      wallP50.Seconds() * 1e3,
		WallP99Ms:      wallP99.Seconds() * 1e3,
		AllocsPerQuery: allocs,
	}
	// The harness re-runs sub-benchmarks (calibration) and the sweep
	// itself revisits comparison cells (the tracing-overhead group runs
	// interleaved repetitions). Per cell, prefer the longest run, and
	// among equal-length runs the fastest: best-of-k is the noise-robust
	// point estimate on shared hosts, where a single short sample can
	// swing ±10% either way.
	for i := range out.Cells {
		c := &out.Cells[i]
		if c.Mode == mode && c.Shards == shards && c.Batch == batch && c.GoMaxProcs == procs && c.Trace == trace {
			if cell.Queries > c.Queries || (cell.Queries == c.Queries && cell.QueriesPerSec > c.QueriesPerSec) {
				*c = cell
			}
			return
		}
	}
	out.Cells = append(out.Cells, cell)
}

// BenchmarkServerThroughput sweeps the serving layer's admission paths:
// the in-process shard sweep (the engine's ceiling), batched admission,
// and the two network fronts — JSON/HTTP (the PR 2 baseline) and the
// length-prefixed binary protocol with connection reuse and batching.
// Each run reports queries/s plus the economy's promised-response
// percentiles. When the BENCH_JSON env var names a file, the sweep also
// writes the machine-readable trajectory there (the `make bench` smoke
// target sets BENCH_JSON=BENCH_server.json).
func BenchmarkServerThroughput(b *testing.B) {
	out := serverBenchFile{
		Benchmark:  "BenchmarkServerThroughput",
		Scheme:     "econ-cheap",
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			runServerThroughput(b, &out, "inproc", shards, 1, 0, "")
		})
	}
	b.Run("mode=microbatch/shards=4", func(b *testing.B) {
		runServerThroughput(b, &out, "microbatch", 4, 1, 0, "")
	})
	for _, batch := range []int{16, 64} {
		b.Run(fmt.Sprintf("mode=batch/shards=4/batch=%d", batch), func(b *testing.B) {
			runServerThroughput(b, &out, "batch", 4, batch, 0, "")
		})
	}
	b.Run("mode=http/shards=4", func(b *testing.B) {
		runServerThroughput(b, &out, "http", 4, 1, 0, "")
	})
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("mode=bin/shards=4/batch=%d", batch), func(b *testing.B) {
			runServerThroughput(b, &out, "bin", 4, batch, 0, "")
		})
	}
	// One shared connection, two protocols: the lockstep baseline pays a
	// full round trip per batch; the multiplexed client keeps the socket
	// and the shards busy with tagged batches in flight. The batch=1 pair
	// is the pipelining headline — same load, same single socket.
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("mode=lockstep/shards=4/batch=%d", batch), func(b *testing.B) {
			runServerThroughput(b, &out, "lockstep", 4, batch, 0, "")
		})
		// The cluster tier's overhead pair: the identical pipelined load
		// direct vs through a cloudrouter front — scripts/checkbench
		// gates routed against pipelined at 15%. Like the trace group
		// below, the pair runs five interleaved repetitions with
		// rotating order (the upsert keeps each cell's best) so a single
		// noisy sample on a shared host can't flip the gate.
		pair := []string{"pipelined", "routed"}
		for rep := 0; rep < 5; rep++ {
			for i := range pair {
				mode := pair[(rep+i)%len(pair)]
				b.Run(fmt.Sprintf("mode=%s/shards=4/batch=%d", mode, batch), func(b *testing.B) {
					runServerThroughput(b, &out, mode, 4, batch, 0, "")
				})
			}
		}
	}
	// Scheduler-width sweep: the engine ceiling (inproc) and the
	// multiplexed front at 1/2/4/8 Ps. On a single-core host the >1 rows
	// measure oversubscription, not speedup — the row records its width
	// so trajectories from different hosts stay comparable.
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("mode=inproc/shards=4/procs=%d", procs), func(b *testing.B) {
			runServerThroughput(b, &out, "inproc", 4, 1, procs, "")
		})
		b.Run(fmt.Sprintf("mode=pipelined/shards=4/batch=1/procs=%d", procs), func(b *testing.B) {
			runServerThroughput(b, &out, "pipelined", 4, 1, procs, "")
		})
	}
	// The batched admission path at production scheduler width: the cell
	// the "100k+ queries/s on 4 cores" roadmap target is read from.
	b.Run("mode=batch/shards=4/batch=64/procs=4", func(b *testing.B) {
		runServerThroughput(b, &out, "batch", 4, 64, 4, "")
	})
	// Tracing-overhead cells on the engine ceiling: "off" prices the
	// installed-but-idle tracer (one atomic load per query — the 5% CI
	// gate in scripts/checkbench), "1/64" the production sampling rate.
	// The "" rerun refreshes the no-tracer baseline adjacent to its two
	// comparisons, so the gate measures the tracer, not the warm-up
	// drift between the sweep's first and last cells — and the group
	// runs five interleaved repetitions (the upsert keeps each cell's
	// best) so a single noisy sample on a shared host can't flip the
	// comparison either way. The order rotates per repetition: every
	// cell gets to run first, so position-dependent effects (post-GC
	// lull, scheduler warm-up after the previous cell's teardown) hit
	// all four cells equally instead of always favoring the baseline.
	traceGroup := []string{"none", "off", "1/64", "all"}
	for rep := 0; rep < 5; rep++ {
		for i := range traceGroup {
			trace := traceGroup[(rep+i)%len(traceGroup)]
			name := "mode=inproc/shards=4/trace=" + strings.ReplaceAll(trace, "/", "-")
			b.Run(name, func(b *testing.B) {
				runServerThroughput(b, &out, "inproc", 4, 1, 0, trace)
			})
		}
	}
	if path := os.Getenv("BENCH_JSON"); path != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s (%d cells)", path, len(out.Cells))
		traj := os.Getenv("BENCH_TRAJECTORY")
		if traj == "" {
			traj = "BENCH_trajectory.json"
		}
		if err := appendTrajectory(traj, &out); err != nil {
			b.Fatal(err)
		}
		b.Logf("appended trajectory row to %s", traj)
	}
}

// benchTrajectoryRow is one dated BENCH_trajectory.json entry: the
// headline cells of a full BenchmarkServerThroughput sweep, so the perf
// history survives BENCH_server.json being overwritten by every run.
type benchTrajectoryRow struct {
	Date           string  `json:"date"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	InprocS1QPS    float64 `json:"inproc_s1_qps"`
	InprocS1Allocs float64 `json:"inproc_s1_allocs_per_query"`
	InprocS8QPS    float64 `json:"inproc_s8_qps"`
	Batch64QPS     float64 `json:"batch64_qps"`
	Batch64Allocs  float64 `json:"batch64_allocs_per_query"`
	HTTPQPS        float64 `json:"http_qps"`
	PipelinedB1QPS float64 `json:"pipelined_b1_qps"`
	InprocP4QPS    float64 `json:"inproc_s4_procs4_qps"`
}

// appendTrajectory appends one dated summary row to the trajectory file
// (a JSON array), creating it on first run.
func appendTrajectory(path string, out *serverBenchFile) error {
	find := func(mode string, shards, batch, procs int) *serverBenchCell {
		for i := range out.Cells {
			c := &out.Cells[i]
			if c.Mode == mode && c.Shards == shards && c.Batch == batch && c.Trace == "" &&
				(procs == 0 || c.GoMaxProcs == procs) {
				return c
			}
		}
		return nil
	}
	row := benchTrajectoryRow{
		Date:       time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoMaxProcs: out.GoMaxProcs,
	}
	if c := find("inproc", 1, 1, 0); c != nil {
		row.InprocS1QPS, row.InprocS1Allocs = c.QueriesPerSec, c.AllocsPerQuery
	}
	if c := find("inproc", 8, 1, 0); c != nil {
		row.InprocS8QPS = c.QueriesPerSec
	}
	if c := find("batch", 4, 64, 0); c != nil {
		row.Batch64QPS, row.Batch64Allocs = c.QueriesPerSec, c.AllocsPerQuery
	}
	if c := find("http", 4, 1, 0); c != nil {
		row.HTTPQPS = c.QueriesPerSec
	}
	if c := find("pipelined", 4, 1, 0); c != nil {
		row.PipelinedB1QPS = c.QueriesPerSec
	}
	if c := find("inproc", 4, 1, 4); c != nil {
		row.InprocP4QPS = c.QueriesPerSec
	}
	var rows []benchTrajectoryRow
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rows); err != nil {
			return fmt.Errorf("bench: corrupt trajectory file %s: %w", path, err)
		}
	}
	rows = append(rows, row)
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// --- Ablation A: regret fraction a (Eq. 3) -------------------------------

func BenchmarkAblationRegretFraction(b *testing.B) {
	for _, a := range []float64{0.001, 0.005, 0.05} {
		b.Run(fmt.Sprintf("a=%g", a), func(b *testing.B) {
			var lastCost, lastResp float64
			for i := 0; i < b.N; i++ {
				s := benchSettings()
				s.Params.RegretFraction = a
				cell, err := experiments.RunCell(s, "econ-cheap", time.Second)
				if err != nil {
					b.Fatal(err)
				}
				lastCost = cell.Cost().Dollars()
				lastResp = cell.MeanResponseSeconds()
			}
			b.ReportMetric(lastCost, "cost-$")
			b.ReportMetric(lastResp, "resp-sec")
		})
	}
}

// --- Ablation B: budget shapes (Fig. 1) ----------------------------------

func BenchmarkAblationBudgetShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationBudgetShape(benchSettings(), time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation C: network throughput --------------------------------------

func BenchmarkAblationNetworkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationNetworkThroughput(benchSettings(), []float64{5, 25, 100}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation D: bypass cache fraction (30 % ideal, [14]) ----------------

func BenchmarkAblationCacheFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationCacheFraction(benchSettings(), []float64{0.15, 0.30, 0.45}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation E: amortization horizon n (Eq. 7, the paper's open problem) -

func BenchmarkAblationAmortization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationAmortization(benchSettings(), []int64{10_000, 100_000}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks on the per-query hot path ----------------------------

// BenchmarkQueryPipeline measures the end-to-end cost of handling one query
// through the full economy (enumeration + selection + settlement + regret).
func BenchmarkQueryPipeline(b *testing.B) {
	cat := PaperCatalog()
	s, err := NewEconCheap(DefaultParams(cat))
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewWorkload(WorkloadConfig{
		Catalog: cat,
		Seed:    1,
		Arrival: FixedArrival(time.Second),
		Budgets: PaperBudgets(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.HandleQuery(gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures query-stream generation alone.
func BenchmarkWorkloadGeneration(b *testing.B) {
	gen, err := NewWorkload(WorkloadConfig{
		Catalog: PaperCatalog(),
		Seed:    1,
		Arrival: FixedArrival(time.Second),
		Budgets: PaperBudgets(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Next()
	}
}

// BenchmarkBudgetEval measures a budget-function evaluation.
func BenchmarkBudgetEval(b *testing.B) {
	f := ConcaveBudget(Dollars(0.01), 60*time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.At(time.Duration(i%60) * time.Second)
	}
}
