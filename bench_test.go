package cloudcache

// The benchmark harness regenerates every figure of the paper's evaluation
// (§VII) as testing.B benchmarks. Figures 4 and 5 come from the same
// simulation grid — Figure 4 reads operating cost, Figure 5 mean response —
// so each Fig4/Fig5 benchmark runs one (scheme, interval) cell and reports
// both values as custom metrics:
//
//	cost-$        total operating cost of the run (Fig. 4 bar)
//	resp-sec      mean response time in seconds (Fig. 5 bar)
//
// Benchmarks run on a reduced stream (benchQueries) so `go test -bench .`
// completes in minutes; `cmd/figures` regenerates the full-scale tables.
// The ablation benchmarks cover the design choices DESIGN.md calls out.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// benchQueries keeps one grid cell to roughly a second of wall time.
const benchQueries = 40_000

// benchSettings is the shared figure-grid configuration.
func benchSettings() Settings {
	return Settings{
		Queries: benchQueries,
		Seed:    42,
	}
}

// runCellBench runs one figure cell per benchmark iteration and reports the
// Fig. 4 / Fig. 5 values as custom metrics.
func runCellBench(b *testing.B, scheme string, interval time.Duration) {
	b.Helper()
	b.ReportAllocs()
	var lastCost, lastResp float64
	for i := 0; i < b.N; i++ {
		cell, err := experiments.RunCell(benchSettings(), scheme, interval)
		if err != nil {
			b.Fatal(err)
		}
		lastCost = cell.Cost().Dollars()
		lastResp = cell.MeanResponseSeconds()
	}
	b.ReportMetric(lastCost, "cost-$")
	b.ReportMetric(lastResp, "resp-sec")
	b.ReportMetric(float64(benchQueries)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// --- Figure 4 + Figure 5: the scheme × interval grid ---------------------

func BenchmarkFig4Fig5(b *testing.B) {
	for _, interval := range []time.Duration{time.Second, 10 * time.Second, 30 * time.Second, 60 * time.Second} {
		for _, scheme := range experiments.SchemeNames {
			b.Run(fmt.Sprintf("%s/interval=%ds", scheme, int(interval.Seconds())), func(b *testing.B) {
				runCellBench(b, scheme, interval)
			})
		}
	}
}

// --- Parallel grid engine -------------------------------------------------

// gridBenchQueries keeps one full 16-cell grid to a few seconds of wall
// time per iteration.
const gridBenchQueries = 5_000

// BenchmarkGridWorkers measures the worker-pool grid engine at several
// worker counts; combine with -cpu to sweep GOMAXPROCS too. Each run
// reports the worker count, grid throughput in queries/s, allocation
// counts, and the wall-clock speedup over the same grid at Workers: 1 —
// the perf trajectory future PRs compare against. Cell results are
// byte-identical at every worker count, so the speedup is pure dispatch.
func BenchmarkGridWorkers(b *testing.B) {
	gridSettings := func(workers int) Settings {
		return Settings{Queries: gridBenchQueries, Seed: 42, Workers: workers}
	}
	cellCount := len(experiments.SchemeNames) * len(experiments.PaperIntervals)

	// The workers=1 sub-benchmark runs first and its averaged per-op time
	// is the speedup baseline, so speedup-x is warm-vs-warm (and reads
	// exactly 1.0 at workers=1).
	var baseline time.Duration
	seen := map[int]bool{}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunGrid(gridSettings(workers)); err != nil {
					b.Fatal(err)
				}
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			if workers == 1 {
				baseline = perOp
			}
			b.ReportMetric(float64(workers), "workers")
			b.ReportMetric(float64(gridBenchQueries*cellCount)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
			if baseline > 0 {
				b.ReportMetric(baseline.Seconds()/perOp.Seconds(), "speedup-x")
			}
		})
	}
}

// --- Online serving layer -------------------------------------------------

// serverBenchCell is one row of the machine-readable perf trajectory.
type serverBenchCell struct {
	Shards        int     `json:"shards"`
	Queries       int64   `json:"queries"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	P50Sec        float64 `json:"p50_s"`
	P99Sec        float64 `json:"p99_s"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// serverBenchFile is the BENCH_server.json schema future PRs diff against.
type serverBenchFile struct {
	Benchmark  string            `json:"benchmark"`
	Scheme     string            `json:"scheme"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Cells      []serverBenchCell `json:"cells"`
}

// BenchmarkServerThroughput sweeps shard counts over the online serving
// engine: concurrent submitters spread across tenants hammer the engine
// in-process (no HTTP), so the number measures admission + economy
// decision throughput and its scaling with shards. Each run reports
// queries/s plus the economy's promised-response percentiles. When the
// BENCH_JSON env var names a file, the sweep also writes the
// machine-readable trajectory there (the `make bench` smoke target sets
// BENCH_JSON=BENCH_server.json).
func BenchmarkServerThroughput(b *testing.B) {
	templates := make([]string, 0, 7)
	for _, t := range PaperTemplates() {
		templates = append(templates, t.Name)
	}
	out := serverBenchFile{
		Benchmark:  "BenchmarkServerThroughput",
		Scheme:     "econ-cheap",
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cat := PaperCatalog()
			srv, err := NewServer(ServerConfig{
				Shards:  shards,
				Scheme:  out.Scheme,
				Params:  DefaultParams(cat),
				Clock:   NewWallClock(60),
				Budgets: PaperBudgets(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Shutdown(context.Background())

			b.ReportAllocs()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			var idx atomic.Int64
			start := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ctx := context.Background()
				for pb.Next() {
					i := idx.Add(1)
					_, err := srv.Submit(ctx, ServerRequest{
						Tenant:   fmt.Sprintf("tenant-%02d", i%64),
						Template: templates[i%int64(len(templates))],
					})
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)

			st := srv.Stats()
			qps := float64(st.Queries) / elapsed.Seconds()
			allocs := float64(m1.Mallocs-m0.Mallocs) / float64(b.N)
			b.ReportMetric(float64(shards), "shards")
			b.ReportMetric(qps, "queries/s")
			b.ReportMetric(st.ResponseP50Sec, "p50-sec")
			b.ReportMetric(st.ResponseP99Sec, "p99-sec")
			cell := serverBenchCell{
				Shards:        shards,
				Queries:       st.Queries,
				QueriesPerSec: qps,
				P50Sec:        st.ResponseP50Sec,
				P99Sec:        st.ResponseP99Sec,
				AllocsPerOp:   allocs,
			}
			// The harness re-runs sub-benchmarks (warm-up, calibration);
			// keep only the final, longest run per shard count.
			for i := range out.Cells {
				if out.Cells[i].Shards == shards {
					out.Cells[i] = cell
					return
				}
			}
			out.Cells = append(out.Cells, cell)
		})
	}
	if path := os.Getenv("BENCH_JSON"); path != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s (%d cells)", path, len(out.Cells))
	}
}

// --- Ablation A: regret fraction a (Eq. 3) -------------------------------

func BenchmarkAblationRegretFraction(b *testing.B) {
	for _, a := range []float64{0.001, 0.005, 0.05} {
		b.Run(fmt.Sprintf("a=%g", a), func(b *testing.B) {
			var lastCost, lastResp float64
			for i := 0; i < b.N; i++ {
				s := benchSettings()
				s.Params.RegretFraction = a
				cell, err := experiments.RunCell(s, "econ-cheap", time.Second)
				if err != nil {
					b.Fatal(err)
				}
				lastCost = cell.Cost().Dollars()
				lastResp = cell.MeanResponseSeconds()
			}
			b.ReportMetric(lastCost, "cost-$")
			b.ReportMetric(lastResp, "resp-sec")
		})
	}
}

// --- Ablation B: budget shapes (Fig. 1) ----------------------------------

func BenchmarkAblationBudgetShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationBudgetShape(benchSettings(), time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation C: network throughput --------------------------------------

func BenchmarkAblationNetworkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationNetworkThroughput(benchSettings(), []float64{5, 25, 100}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation D: bypass cache fraction (30 % ideal, [14]) ----------------

func BenchmarkAblationCacheFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationCacheFraction(benchSettings(), []float64{0.15, 0.30, 0.45}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation E: amortization horizon n (Eq. 7, the paper's open problem) -

func BenchmarkAblationAmortization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.AblationAmortization(benchSettings(), []int64{10_000, 100_000}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks on the per-query hot path ----------------------------

// BenchmarkQueryPipeline measures the end-to-end cost of handling one query
// through the full economy (enumeration + selection + settlement + regret).
func BenchmarkQueryPipeline(b *testing.B) {
	cat := PaperCatalog()
	s, err := NewEconCheap(DefaultParams(cat))
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewWorkload(WorkloadConfig{
		Catalog: cat,
		Seed:    1,
		Arrival: FixedArrival(time.Second),
		Budgets: PaperBudgets(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.HandleQuery(gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures query-stream generation alone.
func BenchmarkWorkloadGeneration(b *testing.B) {
	gen, err := NewWorkload(WorkloadConfig{
		Catalog: PaperCatalog(),
		Seed:    1,
		Arrival: FixedArrival(time.Second),
		Budgets: PaperBudgets(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Next()
	}
}

// BenchmarkBudgetEval measures a budget-function evaluation.
func BenchmarkBudgetEval(b *testing.B) {
	f := ConcaveBudget(Dollars(0.01), 60*time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.At(time.Duration(i%60) * time.Second)
	}
}
