GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke run of the parallel grid engine: one iteration per worker
# count, reporting workers, queries/s, allocs and speedup over workers=1.
bench:
	$(GO) test -run '^$$' -bench GridWorkers -benchtime 1x .

# The tier-1 gate.
ci: build vet race bench
