GO ?= go

.PHONY: all build vet test race bench profile fuzz e2e ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short smoke run of the parallel grid engine: one iteration per worker
# count, reporting workers, queries/s, allocs and speedup over workers=1.
# The serving-layer sweep also writes BENCH_server.json — the
# machine-readable perf trajectory (queries/s, p50/p99, allocs per shard
# count) that future PRs diff against — and checkbench gates the idle
# tracer's overhead (trace=off within 5% of the no-tracer baseline).
bench:
	$(GO) test -run '^$$' -bench GridWorkers -benchtime 1x .
	BENCH_JSON=BENCH_server.json $(GO) test -run '^$$' -bench ServerThroughput -benchtime 1000x .
	@cat BENCH_server.json
	$(GO) run ./scripts/checkbench BENCH_server.json

# Profile the single-shard in-process hot path (the submit→decide→reply
# loop with no wire stack in the way): one ServerThroughput cell under
# -cpuprofile/-memprofile, then the top-10 allocation sites by object
# count and the top-10 CPU consumers. The alloc listing is the first
# place to look when checkbench's allocs/query gate trips.
profile:
	$(GO) test -run '^$$' -bench 'ServerThroughput/shards=1$$' -benchtime 20000x \
		-cpuprofile cpu.prof -memprofile mem.prof .
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_objects mem.prof
	$(GO) tool pprof -top -nodecount=10 cpu.prof

# Short fuzz of the hostile-input decoders — wire frames and state
# snapshots must never panic or load partial state — plus the adversarial
# economy fuzzer: fuzzed multi-tenant streams with a lying tenant must
# never break credit conservation, regret accounting, journal
# reconciliation or underbid dominance. Seed corpora live in the
# packages' testdata/fuzz directories.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime 10s ./internal/server/wire
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/persist
	$(GO) test -run '^$$' -fuzz FuzzShardPacketDecode -fuzztime 10s ./internal/persist
	$(GO) test -run '^$$' -fuzz FuzzEconomyAdversarial -fuzztime 10s ./internal/economy

# End-to-end smoke of the cloudcached daemon: start, replay a stream over
# HTTP with invariant checks, drain gracefully — then the crash-recovery
# leg: SIGKILL halfway (no drain), restore from the periodic checkpoint,
# resume, and compare the books with an uninterrupted run.
e2e:
	./scripts/e2e_smoke.sh

# The tier-1 gate.
ci: build vet race bench fuzz e2e
