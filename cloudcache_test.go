package cloudcache

import (
	"testing"
	"time"
)

// These are the repository's integration tests: they exercise the public
// facade end to end on a reduced catalog, and verify the paper's headline
// orderings on short runs where they already hold.

func testWorkload(t *testing.T, cat *Catalog, gap time.Duration, n int) *Generator {
	t.Helper()
	g, err := NewWorkload(WorkloadConfig{
		Catalog: cat,
		Seed:    11,
		Arrival: FixedArrival(gap),
		Budgets: PaperBudgets(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeEndToEnd(t *testing.T) {
	cat := TPCH(100)
	s, err := NewEconCheap(DefaultParams(cat))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(SimConfig{
		Scheme:   s,
		Workload: testWorkload(t, cat, time.Second, 2000),
		Queries:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemeName != "econ-cheap" || rep.Queries != 2000 {
		t.Errorf("report header: %+v", rep)
	}
	if !rep.OperatingCost.IsPositive() {
		t.Error("no operating cost")
	}
	if rep.Response.N() == 0 {
		t.Error("no response samples")
	}
}

func TestAllSchemesConstructible(t *testing.T) {
	cat := TPCH(10)
	p := DefaultParams(cat)
	for _, name := range SchemeNames() {
		s, err := NewScheme(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("name mismatch: %q vs %q", s.Name(), name)
		}
	}
	if _, err := NewScheme("nope", p); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestBudgetConstructors(t *testing.T) {
	price := Dollars(1)
	tmax := 10 * time.Second
	for _, b := range []BudgetFunc{
		StepBudget(price, tmax),
		LinearBudget(price, tmax),
		ConvexBudget(price, tmax),
		ConcaveBudget(price, tmax),
	} {
		if b.Tmax() != tmax {
			t.Errorf("Tmax = %v", b.Tmax())
		}
		v := b.At(time.Second)
		if v.IsNegative() || v > price {
			t.Errorf("At out of range: %v", v)
		}
	}
}

func TestPaperCatalogAndTemplates(t *testing.T) {
	cat := PaperCatalog()
	if got := cat.TotalBytes(); got < 2_400_000_000_000 || got > 2_600_000_000_000 {
		t.Errorf("paper catalog = %d bytes, want ~2.5TB", got)
	}
	if len(PaperTemplates()) != 7 {
		t.Error("want 7 templates")
	}
	if len(PaperIntervals()) != 4 {
		t.Error("want 4 intervals")
	}
}

func TestPricingPresets(t *testing.T) {
	ec2 := EC2Pricing()
	if !ec2.CPUPerHour.IsPositive() || !ec2.DiskPerGBMonth.IsPositive() {
		t.Error("EC2 preset incomplete")
	}
	netOnly := NetOnlyPricing()
	if !netOnly.CPUPerHour.IsZero() || netOnly.NetworkPerGB.IsZero() {
		t.Error("net-only preset wrong")
	}
}

func TestReproduceFiguresSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("figure grid in -short mode")
	}
	cells, fig4, fig5, err := ReproduceFigures(Settings{
		Catalog:     TPCH(100),
		Queries:     3000,
		Seed:        5,
		Intervals:   []time.Duration{time.Second},
		PhaseLength: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	if fig4.Rows() != 1 || fig5.Rows() != 1 {
		t.Error("tables malformed")
	}
}

// TestPaperHeadlineOrderings verifies the §VII-B claims that hold on short
// 1 s-interval runs at reduced scale: the economy answers more queries in
// the cache than bypass and delivers faster mean responses once indexes are
// available. The full-scale shape record lives in EXPERIMENTS.md.
func TestPaperHeadlineOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering run in -short mode")
	}
	cat := TPCH(200)
	const n = 20000
	run := func(name string) *Report {
		p := DefaultParams(cat)
		p.RegretFraction = 0.0005 // proportionate to the reduced scale
		s, err := NewScheme(name, p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(SimConfig{
			Scheme:   s,
			Workload: testWorkload(t, cat, time.Second, n),
			Queries:  n,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cheap := run("econ-cheap")
	col := run("econ-col")
	fast := run("econ-fast")

	if cheap.Response.Mean() >= col.Response.Mean() {
		t.Errorf("econ-cheap (%0.2fs) not faster than econ-col (%0.2fs)",
			cheap.Response.Mean(), col.Response.Mean())
	}
	if fast.Response.Mean() > cheap.Response.Mean()*1.05 {
		t.Errorf("econ-fast (%0.2fs) slower than econ-cheap (%0.2fs)",
			fast.Response.Mean(), cheap.Response.Mean())
	}
}
