// Command checkbench gates three overhead contracts recorded in
// BENCH_server.json:
//
//   - Tracing: the mode=inproc cell with the tracer installed but
//     sampling disabled ("trace=off") must stay within 5% of the
//     identical cell without a tracer at all — the observability
//     layer's "off costs ~nothing" contract. The 1-in-64 sampling cell
//     is reported for the EXPERIMENTS.md overhead table but not gated:
//     sampled runs pay for what they measure.
//   - Routing: each mode=routed cell (the pipelined load through a
//     cloudrouter front) must retain at least 85% of its mode=pipelined
//     twin's throughput — the cluster tier's "the hop is cheap"
//     contract.
//   - Allocations: every in-process admission cell (inproc,
//     microbatch, batch) must stay within 10% (plus one alloc of
//     absolute slack) of the allocs/query recorded when the
//     allocation-free hot path landed — the "steady state does not
//     allocate" contract. Throughput is noisy on shared hosts;
//     allocation counts are nearly deterministic, so this gate is the
//     sharp one.
//
// Usage: go run ./scripts/checkbench [BENCH_server.json]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type cell struct {
	Mode           string  `json:"mode"`
	Shards         int     `json:"shards"`
	Batch          int     `json:"batch"`
	Trace          string  `json:"trace"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
}

type benchFile struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	Cells      []cell `json:"cells"`
}

// maxTraceOffRegression is the gate: trace=off must retain at least this
// fraction of the no-tracer baseline's throughput.
const maxTraceOffRegression = 0.05

// maxRoutedOverhead is the cluster gate: a routed cell must retain at
// least 1-maxRoutedOverhead of its direct (pipelined) twin's throughput.
const maxRoutedOverhead = 0.15

// The allocation gate: an in-process cell fails when its allocs/query
// exceeds baseline*(1+maxAllocRegression)+allocSlack. The baselines are
// the values BENCH_server.json recorded when the allocation-free hot
// path landed (steady-state window, post-warm-up); the absolute slack
// keeps near-zero baselines from tripping on one stray background
// allocation. `make profile` shows where new allocations come from.
const (
	maxAllocRegression = 0.10
	allocSlack         = 1.0
)

type allocKey struct {
	mode   string
	shards int
	batch  int
}

var allocBaseline = map[allocKey]float64{
	{"inproc", 1, 1}:     4.2,
	{"inproc", 2, 1}:     4.8,
	{"inproc", 4, 1}:     4.9,
	{"inproc", 8, 1}:     5.8,
	{"microbatch", 4, 1}: 4.9,
	{"batch", 4, 16}:     3.6,
	{"batch", 4, 64}:     1.1,
}

func main() {
	path := "BENCH_server.json"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}

	// The three comparable cells: same mode/shards/batch/procs, only the
	// tracing configuration differs.
	find := func(trace string) *cell {
		for i := range f.Cells {
			c := &f.Cells[i]
			if c.Mode == "inproc" && c.Shards == 4 && c.Batch == 1 && c.GoMaxProcs == f.GoMaxProcs && c.Trace == trace {
				return c
			}
		}
		return nil
	}
	// "none" is the trace group's own no-tracer baseline, measured in
	// the same adjacent window of the sweep as the off/sampled cells
	// (the plain "" default rows run much earlier, in a different noise
	// regime on shared hosts).
	base := find("none")
	off := find("off")
	sampled := find("1/64")
	if base == nil || off == nil {
		fatal(fmt.Errorf("%s: missing mode=inproc trace cells (base %v, off %v) — rerun the ServerThroughput sweep", path, base != nil, off != nil))
	}

	report := func(name string, c *cell) {
		delta := (c.QueriesPerSec - base.QueriesPerSec) / base.QueriesPerSec * 100
		fmt.Printf("%-12s %12.0f queries/s  %6.1f allocs/query  (%+.1f%% vs no tracer)\n",
			name, c.QueriesPerSec, c.AllocsPerQuery, delta)
	}
	fmt.Printf("%-12s %12.0f queries/s  %6.1f allocs/query\n", "no tracer", base.QueriesPerSec, base.AllocsPerQuery)
	report("trace=off", off)
	if sampled != nil {
		report("trace=1/64", sampled)
	}

	floor := base.QueriesPerSec * (1 - maxTraceOffRegression)
	if off.QueriesPerSec < floor {
		fatal(fmt.Errorf("trace=off throughput %.0f queries/s fell below %.0f (%.0f%% of the no-tracer baseline %.0f)",
			off.QueriesPerSec, floor, (1-maxTraceOffRegression)*100, base.QueriesPerSec))
	}
	fmt.Printf("OK: idle tracer costs %.1f%% (gate: %.0f%%)\n",
		(base.QueriesPerSec-off.QueriesPerSec)/base.QueriesPerSec*100, maxTraceOffRegression*100)

	// Router overhead: every routed cell against its pipelined twin
	// (same shards/batch/procs/RTT, one extra hop). Older trajectories
	// without routed cells pass vacuously.
	findMode := func(mode string, batch int) *cell {
		for i := range f.Cells {
			c := &f.Cells[i]
			if c.Mode == mode && c.Shards == 4 && c.Batch == batch && c.GoMaxProcs == f.GoMaxProcs && c.Trace == "" {
				return c
			}
		}
		return nil
	}
	for _, batch := range []int{1, 64} {
		routed := findMode("routed", batch)
		if routed == nil {
			continue
		}
		direct := findMode("pipelined", batch)
		if direct == nil {
			fatal(fmt.Errorf("%s: mode=routed/batch=%d present but its mode=pipelined twin is missing — rerun the ServerThroughput sweep", path, batch))
		}
		overhead := (direct.QueriesPerSec - routed.QueriesPerSec) / direct.QueriesPerSec * 100
		fmt.Printf("%-20s %12.0f queries/s  vs direct %12.0f  (%+.1f%%)\n",
			fmt.Sprintf("routed/batch=%d", batch), routed.QueriesPerSec, direct.QueriesPerSec, -overhead)
		if routed.QueriesPerSec < direct.QueriesPerSec*(1-maxRoutedOverhead) {
			fatal(fmt.Errorf("routed/batch=%d throughput %.0f queries/s is %.1f%% below direct %.0f (gate: %.0f%%)",
				batch, routed.QueriesPerSec, overhead, direct.QueriesPerSec, maxRoutedOverhead*100))
		}
	}

	// Allocation regression: every in-process cell with a recorded
	// baseline, at any scheduler width (allocs/query does not depend on
	// GOMAXPROCS). Trace cells are covered by their trace="" twin.
	gated := 0
	for i := range f.Cells {
		c := &f.Cells[i]
		if c.Trace != "" {
			continue
		}
		base, ok := allocBaseline[allocKey{c.Mode, c.Shards, c.Batch}]
		if !ok {
			continue
		}
		gated++
		budget := base*(1+maxAllocRegression) + allocSlack
		fmt.Printf("%-30s %6.2f allocs/query  (baseline %.2f, budget %.2f)\n",
			fmt.Sprintf("allocs %s/shards=%d/batch=%d/procs=%d", c.Mode, c.Shards, c.Batch, c.GoMaxProcs),
			c.AllocsPerQuery, base, budget)
		if c.AllocsPerQuery > budget {
			fatal(fmt.Errorf("%s/shards=%d/batch=%d/procs=%d allocates %.2f per query, over the %.2f budget (baseline %.2f +%.0f%% +%.0f slack) — run `make profile` for the top allocation sites",
				c.Mode, c.Shards, c.Batch, c.GoMaxProcs, c.AllocsPerQuery, budget, base, maxAllocRegression*100, allocSlack))
		}
	}
	if gated == 0 {
		fatal(fmt.Errorf("%s: no in-process cells matched the allocation baselines — rerun the ServerThroughput sweep", path))
	}
	fmt.Printf("OK: %d in-process cells within their allocation budgets\n", gated)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checkbench:", err)
	os.Exit(1)
}
