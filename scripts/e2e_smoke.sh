#!/usr/bin/env bash
# End-to-end smoke of the online serving layer: build the daemon, start
# it, replay a workload through the HTTP front with invariant checks,
# inspect the read endpoints, then drain gracefully and verify the final
# snapshot accounts every query. Used by `make e2e` and CI.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18344}"
QUERIES="${QUERIES:-10000}"
SHARDS="${SHARDS:-4}"
SCHEME="${SCHEME:-econ-cheap}"
BIN="$(mktemp -d)"
DAEMON_PID=""
trap '[ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/cloudcached" ./cmd/cloudcached
go build -o "$BIN/workloadgen" ./cmd/workloadgen

"$BIN/cloudcached" -addr "$ADDR" -shards "$SHARDS" -scheme "$SCHEME" -speedup 60 \
    >"$BIN/final.json" 2>"$BIN/daemon.log" &
DAEMON_PID=$!

# Wait for the daemon to come up.
for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "daemon died on startup:"; cat "$BIN/daemon.log"; exit 1
    fi
    sleep 0.1
done
curl -sf "http://$ADDR/healthz"

# Replay the stream and verify invariants from the client side.
"$BIN/workloadgen" -serve "http://$ADDR" -queries "$QUERIES" -clients 8 -tenants 16 -check

# Read endpoints answer.
curl -sf "http://$ADDR/v1/stats" >/dev/null
curl -sf "http://$ADDR/v1/structures" >/dev/null

# Graceful drain: SIGTERM, wait for exit, then check the final snapshot.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"

python3 - "$BIN/final.json" "$QUERIES" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
want = int(sys.argv[2])
assert snap["queries"] == want, f"final snapshot has {snap['queries']} queries, want {want}"
assert snap["draining"] is True, "final snapshot must be draining"
assert snap["credit_usd"] >= 0, f"account went negative: {snap['credit_usd']}"
busy = sum(1 for s in snap["per_shard"] if s["queries"] > 0)
assert busy >= 2, f"only {busy} shards saw traffic"
print(f"e2e OK: {snap['queries']} queries over {busy}/{snap['shards']} shards, "
      f"cost=${snap['operating_cost_usd']:.2f} credit=${snap['credit_usd']:.2f}")
EOF
