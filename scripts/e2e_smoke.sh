#!/usr/bin/env bash
# End-to-end smoke of the online serving layer: build the daemon, start
# it with both fronts (JSON/HTTP and the length-prefixed binary
# protocol), replay a workload through each with invariant checks —
# including one replay with a free-riding adversary tenant merged in —
# inspect the read endpoints, then drain gracefully and verify the final
# snapshot accounts every query. Used by `make e2e` and CI.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:18344}"
BIN_ADDR="${BIN_ADDR:-127.0.0.1:18345}"
QUERIES="${QUERIES:-10000}"
SHARDS="${SHARDS:-4}"
SCHEME="${SCHEME:-econ-cheap}"
BIN="$(mktemp -d)"
DAEMON_PID=""
trap '[ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/cloudcached" ./cmd/cloudcached
go build -o "$BIN/workloadgen" ./cmd/workloadgen

# -trace-sample 64 and -pprof exercise the observability layer: sampled
# decision traces on both fronts, the economy event journal, /metrics
# and the profiling mux.
"$BIN/cloudcached" -addr "$ADDR" -listen-bin "$BIN_ADDR" -shards "$SHARDS" -scheme "$SCHEME" -speedup 60 \
    -trace-sample 64 -pprof \
    >"$BIN/final.json" 2>"$BIN/daemon.log" &
DAEMON_PID=$!

# Wait for the daemon to come up.
for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "daemon died on startup:"; cat "$BIN/daemon.log"; exit 1
    fi
    sleep 0.1
done
curl -sf "http://$ADDR/healthz"

# Replay the stream over HTTP (batched: exercises POST /v1/batch) and
# verify invariants from the client side; -dump-trace fetches sampled
# decision traces over GET /v1/trace after the run.
"$BIN/workloadgen" -serve "http://$ADDR" -queries "$QUERIES" -clients 8 -tenants 16 -batch 8 -check \
    -dump-trace 4 >"$BIN/trace_http.out"
grep -q "decision traces: sample_every=64" "$BIN/trace_http.out" || {
    echo "workloadgen HTTP trace dump missing:"; cat "$BIN/trace_http.out"; exit 1
}

# Same stream again over the binary protocol with connection reuse and
# batching; the delta-based check tolerates the earlier run's counters.
"$BIN/workloadgen" -serve "$BIN_ADDR" -proto bin -batch 32 -queries "$QUERIES" \
    -clients 8 -tenants 16 -stats-url "http://$ADDR" -check

# Multi-tenant skewed replay: a Zipf(1.1) hot-tenant mix over the binary
# front, stats fetched over the wire protocol's stats frame (no -stats-url),
# with the per-tenant ledger-sum invariant checked from the client side.
"$BIN/workloadgen" -serve "$BIN_ADDR" -proto bin -batch 16 -queries "$QUERIES" \
    -clients 8 -tenants 8 -tenant-skew 1.1 -check

# Adversarial replay: a free-riding tenant ("mallory", underbidding her
# truthful valuation to 2%) merged into the honest stream. The daemon
# must keep every externally checkable invariant with the liar in the
# books, and the liar's ledger must be visible — and settled — in stats.
"$BIN/workloadgen" -serve "http://$ADDR" -queries "$QUERIES" -clients 8 -tenants 16 -batch 8 \
    -adversary free-rider -check >"$BIN/adversary.out"
grep -q "invariants: OK" "$BIN/adversary.out" || {
    echo "adversarial replay failed checks:"; cat "$BIN/adversary.out"; exit 1
}
curl -sf "http://$ADDR/v1/stats" >"$BIN/stats_adv.json"
python3 - "$BIN/stats_adv.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
mallory = [t for t in stats.get("tenants") or [] if t["tenant"] == "mallory"]
assert mallory, "free-rider replay left no mallory ledger in /v1/stats"
m = mallory[0]
assert m["queries"] > 0, f"mallory ledger settled no queries: {m}"
assert m["spend_usd"] >= 0, f"mallory ledger spend negative: {m}"
print(f"adversary OK: mallory settled {m['queries']} underbid queries, "
      f"spend=${m['spend_usd']:.4f}")
EOF

# Same stream once more over the multiplexed v2 protocol: 4 connections,
# 32 tagged batches in flight on each, completed out of order by the
# daemon, with stats taken from the server-pushed stream (no polling).
# The -check invariants prove the reordering lost and double-counted
# nothing; -dump-trace fetches traces over the v2 trace frame.
"$BIN/workloadgen" -serve "$BIN_ADDR" -proto bin -pipeline 32 -batch 4 -queries "$QUERIES" \
    -clients 4 -tenants 16 -check -dump-trace 4 >"$BIN/trace_bin.out"
grep -q "decision traces: sample_every=64" "$BIN/trace_bin.out" || {
    echo "workloadgen binary trace dump missing:"; cat "$BIN/trace_bin.out"; exit 1
}

# Read endpoints answer, compact and pretty.
curl -sf "http://$ADDR/v1/stats" >/dev/null
curl -sf "http://$ADDR/v1/stats?pretty=1" >/dev/null
curl -sf "http://$ADDR/v1/structures" >/dev/null

# ── Observability legs ────────────────────────────────────────────────
# /metrics speaks Prometheus text: economy counters, mailbox gauges,
# stage-latency histograms and runtime gauges must all be present.
curl -sf "http://$ADDR/metrics" >"$BIN/metrics.txt"
for m in cloudcache_queries_total cloudcache_mailbox_depth cloudcache_stage_seconds_bucket \
         cloudcache_economy_events_total cloudcache_trace_sample_every go_goroutines; do
    grep -q "$m" "$BIN/metrics.txt" || { echo "/metrics missing $m"; exit 1; }
done

# pprof is mounted (opt-in via the -pprof flag above).
curl -sf "http://$ADDR/debug/pprof/cmdline" >/dev/null

# Sampled decision traces carry the complete decision path: identity,
# economy verdict and all four stage timings. The replays are done, so
# the journal and the ledgers are quiescent: every invest/evict must
# appear in /v1/events with dollars reconciling against /v1/stats.
curl -sf "http://$ADDR/v1/trace?n=256" >"$BIN/trace.json"
curl -sf "http://$ADDR/v1/events?n=64" >"$BIN/events.json"
curl -sf "http://$ADDR/v1/stats" >"$BIN/stats.json"
python3 - "$BIN/trace.json" "$BIN/events.json" "$BIN/stats.json" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = json.load(open(sys.argv[2]))
stats = json.load(open(sys.argv[3]))

assert trace["sample_every"] == 64, f"sample_every = {trace['sample_every']}"
recs = trace["records"]
assert recs, "no sampled decision traces after 50k queries at 1-in-64"
for r in recs:
    assert r["template"] and r["query_id"] and r["seq"], f"incomplete identity: {r}"
    assert r["decide_ns"] > 0 and r["mailbox_wait_ns"] >= 0, f"missing stage timings: {r}"
    assert r["declined"] or r["response_time_s"] > 0, f"missing economy verdict: {r}"
# Network-front samples carry the frame stages too (decode + encode).
assert any(r["decode_ns"] > 0 and r["encode_ns"] > 0 for r in recs), \
    "no record carries the full decode->encode stage split"

tot = events["totals"]
assert tot["invests"] > 0, "no invest events journaled"
assert events["events"], "event journal empty"
for e in events["events"]:
    assert e["type"] in ("invest", "evict", "recover"), e
    assert e["reason"] and e["seq"] > 0, f"incomplete event: {e}"
    if e["type"] in ("invest", "evict"):
        assert e["structure"], f"lifecycle event without a structure: {e}"

def close(a, b):
    return abs(a - b) <= abs(b) * 1e-9 + 1e-9
invested = sum(s["invested_usd"] for s in stats["per_shard"])
recovered = sum(s["recovered_usd"] for s in stats["per_shard"])
assert close(tot["invested_usd"], invested), \
    f"journal invested {tot['invested_usd']} != ledgers {invested}"
assert close(tot["recovered_usd"], recovered), \
    f"journal recovered {tot['recovered_usd']} != ledgers {recovered}"
assert tot["evicts"] == stats["failures"], \
    f"journal evicts {tot['evicts']} != failure sweeps {stats['failures']}"
print(f"observability OK: {len(recs)} traces, {tot['invests']} invests / "
      f"{tot['evicts']} evicts / {tot['recovers']} recovers, "
      f"${tot['invested_usd']:.4f} invested reconciles")
EOF

# Graceful drain: SIGTERM, wait for exit, then check the final snapshot.
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"

python3 - "$BIN/final.json" "$((QUERIES * 5))" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
want = int(sys.argv[2])
assert snap["queries"] == want, f"final snapshot has {snap['queries']} queries, want {want}"
assert snap["errors"] == 0, f"final snapshot has {snap['errors']} request errors"
assert snap["draining"] is True, "final snapshot must be draining"
assert snap["credit_usd"] >= 0, f"account went negative: {snap['credit_usd']}"
busy = sum(1 for s in snap["per_shard"] if s["queries"] > 0)
assert busy >= 2, f"only {busy} shards saw traffic"
# Per-tenant ledgers: every query was tenant-tagged, so the drained
# snapshot's tenant sections must account the full query counter and
# agree between the aggregate merge and the per-shard detail.
tenants = snap.get("tenants") or []
assert tenants, "drained snapshot has no tenant ledgers"
tq = sum(t["queries"] for t in tenants)
assert tq == snap["queries"], f"tenant ledgers account {tq} of {snap['queries']} queries"
shard_tq = sum(t["queries"] for s in snap["per_shard"] for t in s.get("tenants") or [])
assert shard_tq == tq, f"per-shard tenant sums {shard_tq} != merged {tq}"
assert all(t["declined"] <= t["queries"] for t in tenants), "tenant declined > queries"
print(f"e2e OK: {snap['queries']} queries over {busy}/{snap['shards']} shards "
      f"(http+bin+multi-tenant+pipelined), {len(tenants)} tenant ledgers, "
      f"cost=${snap['operating_cost_usd']:.2f} credit=${snap['credit_usd']:.2f}")
EOF

# ── Crash-recovery leg ────────────────────────────────────────────────
# Crash a daemon halfway through the stream (SIGKILL — no drain, no
# goodbye; the state on disk is whatever the periodic checkpoint ticker
# last persisted), restart it from that checkpoint, resume the stream
# where it stopped (-skip), and check the resumed run's drained snapshot
# against an uninterrupted control run of the same stream. Wall-clock
# timing varies run to run (rent, failure sweeps), so the comparison
# pins the timing-independent dimensions: admitted queries, per-tenant
# attribution, zero request errors.
R_ADDR="${R_ADDR:-127.0.0.1:18346}"
RQ="${RQ:-3000}"
HALF=$((RQ / 2))
STATE="$BIN/state"
CTL_STATE="$BIN/state-control"

start_daemon() { # state_dir final_json log
    "$BIN/cloudcached" -addr "$R_ADDR" -shards "$SHARDS" -scheme "$SCHEME" -speedup 60 \
        -state-dir "$1" -checkpoint-interval 1s >"$2" 2>"$3" &
    DAEMON_PID=$!
    for i in $(seq 1 50); do
        if curl -sf "http://$R_ADDR/healthz" >/dev/null 2>&1; then return; fi
        if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
            echo "daemon died on startup:"; cat "$3"; exit 1
        fi
        sleep 0.1
    done
    curl -sf "http://$R_ADDR/healthz" >/dev/null
}

replay() { # queries skip
    "$BIN/workloadgen" -serve "http://$R_ADDR" -queries "$1" -skip "$2" \
        -clients 4 -tenants 8 -batch 8 -check
}

# Uninterrupted control (graceful drain writes its snapshot).
start_daemon "$CTL_STATE" "$BIN/control.json" "$BIN/control.log"
replay "$RQ" 0
kill -TERM "$DAEMON_PID"; wait "$DAEMON_PID"; DAEMON_PID=""

# Crashed run: first half, a checkpoint tick to persist it, then
# SIGKILL. Nothing is drained and no final snapshot is written — the
# next boot has only the ticker's checkpoint to stand on.
start_daemon "$STATE" "$BIN/partial.json" "$BIN/partial.log"
replay "$HALF" 0
sleep 1.5 # let the checkpoint ticker capture the post-replay state
kill -9 "$DAEMON_PID"; wait "$DAEMON_PID" 2>/dev/null || true; DAEMON_PID=""
[ -s "$STATE/econ.snap" ] || { echo "checkpoint ticker left no snapshot in $STATE"; exit 1; }

# Restart from the checkpoint and resume the second half.
start_daemon "$STATE" "$BIN/resumed.json" "$BIN/resumed.log"
grep -q "restored snapshot.*path=$STATE/econ.snap" "$BIN/resumed.log" || {
    echo "restart did not restore the snapshot:"; cat "$BIN/resumed.log"; exit 1
}
replay "$HALF" "$HALF"
kill -TERM "$DAEMON_PID"; wait "$DAEMON_PID"; DAEMON_PID=""

python3 - "$BIN/resumed.json" "$BIN/control.json" "$RQ" <<'EOF'
import json, sys
resumed = json.load(open(sys.argv[1]))
control = json.load(open(sys.argv[2]))
rq = int(sys.argv[3])
# The restart must be invisible in the books' stream-determined
# dimensions: the resumed run's drained snapshot equals the
# uninterrupted control's.
assert resumed["queries"] == rq, f"resumed snapshot has {resumed['queries']} queries, want {rq}"
assert resumed["queries"] == control["queries"], \
    f"resumed {resumed['queries']} queries != control {control['queries']}"
assert resumed["errors"] == 0 and control["errors"] == 0, "request errors in recovery leg"
assert resumed["scheme"] == control["scheme"] and resumed["shards"] == control["shards"]
rt = {t["tenant"]: t["queries"] for t in resumed.get("tenants") or []}
ct = {t["tenant"]: t["queries"] for t in control.get("tenants") or []}
assert rt == ct, f"per-tenant attribution diverged after restart:\nresumed {rt}\ncontrol {ct}"
assert resumed["credit_usd"] >= 0, f"restored account went negative: {resumed['credit_usd']}"
print(f"recovery OK: kill at {rq//2}, resumed to {resumed['queries']} queries, "
      f"{len(rt)} tenant ledgers match the uninterrupted run")
EOF

# ── Cluster leg ───────────────────────────────────────────────────────
# Two cloudcached backends behind one stateless cloudrouter: replay the
# stream through the router with invariant checks, live-migrate a shard
# mid-run (measuring the blackout window), then SIGKILL one backend and
# verify graceful degradation — the dead backend's shards answer
# tag-scoped errors while the survivor keeps deciding and the router
# itself stays up.
B0_ADDR="${B0_ADDR:-127.0.0.1:18350}"
B0_BIN="${B0_BIN:-127.0.0.1:18351}"
B1_ADDR="${B1_ADDR:-127.0.0.1:18352}"
B1_BIN="${B1_BIN:-127.0.0.1:18353}"
RT_ADDR="${RT_ADDR:-127.0.0.1:18354}"
RT_BIN="${RT_BIN:-127.0.0.1:18355}"
CQ="${CQ:-12000}"
B0_PID=""; B1_PID=""; RT_PID=""
trap 'for p in "$B0_PID" "$B1_PID" "$RT_PID" "$DAEMON_PID"; do
          [ -n "$p" ] && kill "$p" 2>/dev/null || true
      done; rm -rf "$BIN"' EXIT

go build -o "$BIN/cloudrouter" ./cmd/cloudrouter

start_backend() { # http_addr bin_addr final_json log -> pid on stdout
    "$BIN/cloudcached" -addr "$1" -listen-bin "$2" -shards "$SHARDS" -scheme "$SCHEME" -speedup 60 \
        >"$3" 2>"$4" &
    local pid=$!
    for i in $(seq 1 50); do
        if curl -sf "http://$1/healthz" >/dev/null 2>&1; then break; fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "backend on $1 died on startup:" >&2; cat "$4" >&2; exit 1
        fi
        sleep 0.1
    done
    echo "$pid"
}

B0_PID=$(start_backend "$B0_ADDR" "$B0_BIN" "$BIN/b0.json" "$BIN/b0.log")
B1_PID=$(start_backend "$B1_ADDR" "$B1_BIN" "$BIN/b1.json" "$BIN/b1.log")

"$BIN/cloudrouter" -addr "$RT_ADDR" -listen-bin "$RT_BIN" \
    -backends "$B0_BIN,$B1_BIN" -backend-http "http://$B0_ADDR,http://$B1_ADDR" \
    -health-interval 200ms 2>"$BIN/router.log" &
RT_PID=$!
for i in $(seq 1 50); do
    if curl -sf "http://$RT_ADDR/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$RT_PID" 2>/dev/null; then
        echo "router died on startup:"; cat "$BIN/router.log"; exit 1
    fi
    sleep 0.1
done
curl -sf "http://$RT_ADDR/readyz" >/dev/null || { echo "router not ready"; exit 1; }
curl -sf "http://$RT_ADDR/metrics" | grep -q "cloudrouter_shards $SHARDS" || {
    echo "router metrics missing shard count"; exit 1
}

# Replay through the router (multiplexed v2, stats fetched from the
# router's merged view over the wire) while a live migration runs in the
# middle of the stream. Throttled so the move genuinely lands mid-run.
"$BIN/workloadgen" -serve "$RT_BIN" -proto bin -pipeline 16 -batch 8 -queries "$CQ" \
    -clients 4 -tenants 16 -qps 4000 -check >"$BIN/routed.out" &
WG_PID=$!
sleep 1
OWNER0=$(curl -sf "http://$RT_ADDR/metrics" | awk '$1 == "cloudrouter_shard_owner{shard=\"0\"}" {print $2}')
[ -n "$OWNER0" ] || { echo "router metrics missing shard 0 owner"; exit 1; }
DEST=$((1 - OWNER0))
curl -sf -X POST "http://$RT_ADDR/admin/migrate?shard=0&to=$DEST" >"$BIN/migrate.json"
wait "$WG_PID" || { echo "routed replay failed:"; cat "$BIN/routed.out"; cat "$BIN/router.log"; exit 1; }
grep -q "invariants: OK" "$BIN/routed.out" || { echo "routed replay skipped checks:"; cat "$BIN/routed.out"; exit 1; }

python3 - "$BIN/migrate.json" "$DEST" <<'EOF'
import json, sys
mv = json.load(open(sys.argv[1]))
assert mv["to"] == int(sys.argv[2]) and mv["shard"] == 0, mv
assert mv["blackout_ms"] > 0, f"blackout window not measured: {mv}"
print(f"migration OK: shard 0 -> backend {mv['to']}, blackout {mv['blackout_ms']:.1f}ms")
EOF
curl -sf "http://$RT_ADDR/metrics" | grep -q "cloudrouter_migrations_total 1" || {
    echo "router metrics did not count the migration"; exit 1
}

# SIGKILL backend 1 — no drain, no goodbye — and replay again with
# -tolerate-errors: the run must complete over a live router connection
# (failures tag-scoped per query, not connection death), with the
# surviving backend still deciding its shards.
kill -9 "$B1_PID"; wait "$B1_PID" 2>/dev/null || true; B1_PID=""
sleep 0.5
"$BIN/workloadgen" -serve "$RT_BIN" -proto bin -pipeline 16 -batch 8 -queries "$CQ" \
    -clients 4 -tenants 16 -check -tolerate-errors >"$BIN/degraded.out" || {
    echo "degraded replay failed:"; cat "$BIN/degraded.out"; cat "$BIN/router.log"; exit 1
}
python3 - "$BIN/degraded.out" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"(\d+) ok \((\d+) declined\), (\d+) failed", text)
assert m, f"no replay summary in output:\n{text}"
ok, declined, failed = map(int, m.groups())
assert ok > 0, "no queries survived the backend kill — whole cluster dark"
assert failed > 0, "backend kill cost nothing — test vacuous"
assert "invariants: OK" in text, f"invariants failed:\n{text}"
print(f"degradation OK: {ok} acked / {failed} tag-scoped failures after SIGKILL")
EOF

# The router itself must still be alive and honestly degraded.
curl -sf "http://$RT_ADDR/healthz" >/dev/null || { echo "router died with its backend"; exit 1; }
RSTATE=$(curl -s -o /dev/null -w "%{http_code}" "http://$RT_ADDR/readyz")
[ "$RSTATE" = "503" ] || { echo "router /readyz = $RSTATE after backend kill, want 503"; exit 1; }

# Graceful teardown of the survivors.
kill -TERM "$RT_PID"; wait "$RT_PID" 2>/dev/null || true; RT_PID=""
kill -TERM "$B0_PID"; wait "$B0_PID" 2>/dev/null || true; B0_PID=""
echo "cluster OK: routed replay + live migration + SIGKILL degradation"
